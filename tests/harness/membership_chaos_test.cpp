// Elastic-membership chaos coverage: runtime join/leave transitions over
// the full master/slaves/collector cluster, differentially checked against
// ReferenceSlidingJoin (tests/harness/chaos_harness.h).
//
// The acceptance claims, as tests:
//   * a graceful leave loses nothing and duplicates nothing: the output set
//     EQUALS the reference, and no post-voiding (group, epoch) tag is
//     produced by more than one rank (dup_group_epoch_ranks == 0);
//   * a join admits a standby mid-run and the cluster still answers
//     exactly; replicas re-home to the new ring successors (handovers);
//   * seeded join/leave schedules are byte-identical across worker counts
//     {1, 4} -- outputs, merged trace, per-rank recorder exports -- because
//     every transition step lands at a deterministic epoch boundary;
//   * a crash RACING a membership transition (the leaver itself, a drain
//     recipient, or a member while a join drains groups toward the joiner)
//     degrades cleanly to the failover path: exact output, one eviction;
//   * the policy loop proposes scale-out under surge and scale-in when
//     idle, observable in the summary counters;
//   * invalid scheduled events are skipped and counted, never executed.
//
// On failure, each test dumps its artifacts (summary, recorder exports,
// trace) under $SJOIN_ARTIFACT_DIR (or the legacy
// $SJOIN_MEMBERSHIP_ARTIFACT_DIR alias) when set -- the CI chaos job
// uploads that directory.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "harness/chaos_harness.h"
#include "obs/artifact.h"

namespace sjoin {
namespace {

/// Mirrors chaos_test.cpp BaseOptions (3 slaves, short epochs, dense
/// trace), with elastic membership enabled on a longer trace so schedules
/// starting at epoch 4 complete well before exhaustion (~50 epochs).
ChaosClusterOptions ElasticBaseOptions(std::uint64_t fault_seed) {
  ChaosClusterOptions opts;
  opts.cfg.num_slaves = 3;
  opts.cfg.join.num_partitions = 24;
  opts.cfg.join.window = 30 * kUsPerMs;
  opts.cfg.epoch.t_dist = 5 * kUsPerMs;
  opts.cfg.epoch.t_rep = 20 * kUsPerMs;
  opts.cfg.cluster.elastic.enabled = true;
  opts.wall.run_for = 10 * kUsPerSec;
  opts.wall.recv_timeout_us = 250 * kUsPerMs;
  opts.wall.recv_max_retries = 3;
  opts.faults.seed = fault_seed;
  opts.trace = MakeChaosTrace(/*seed=*/97, /*count=*/2000,
                              /*span_us=*/250 * kUsPerMs,
                              /*key_domain=*/40);
  return opts;
}

std::string PairsDigest(const std::vector<JoinPair>& pairs) {
  std::ostringstream out;
  for (const JoinPair& p : pairs) {
    out << p.ts0 << ',' << p.ts1 << ',' << p.key << '\n';
  }
  return out.str();
}

/// Mirrors worker_chaos_test.cpp: drops the lazily registered
/// worker_busy_cost cell so a workers=1 export compares against a
/// workers>1 export.
std::string StripWorkerCell(const std::string& text) {
  constexpr std::string_view kName = "worker_busy_cost";
  std::istringstream in(text);
  std::ostringstream out;
  std::string line;
  int drop_col = -1;
  bool first_line = true;
  while (std::getline(in, line)) {
    if (!line.empty() && line.front() == '{') {  // JSONL row
      const std::string key = std::string("\"") + std::string(kName) + "\":";
      const std::size_t k = line.find(key);
      if (k != std::string::npos) {
        std::size_t end = line.find_first_of(",}", k + key.size());
        std::size_t start = k;
        if (end != std::string::npos && line[end] == ',') {
          ++end;  // key in the middle: eat its trailing comma
        } else if (start > 0 && line[start - 1] == ',') {
          --start;  // last key: eat the preceding comma instead
        }
        line.erase(start, end - start);
      }
      out << line << '\n';
      continue;
    }
    std::vector<std::string> cells;
    std::istringstream fields(line);
    std::string cell;
    while (std::getline(fields, cell, ',')) cells.push_back(cell);
    if (first_line) {
      for (std::size_t i = 0; i < cells.size(); ++i) {
        if (cells[i] == kName) drop_col = static_cast<int>(i);
      }
      first_line = false;
    }
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (static_cast<int>(i) == drop_col) continue;
      if (i != 0 && !(drop_col == 0 && i == 1)) out << ',';
      out << cells[i];
    }
    out << '\n';
  }
  return out.str();
}

/// Writes the run's deterministic artifacts under the membership artifact
/// dir ($SJOIN_ARTIFACT_DIR or the legacy $SJOIN_MEMBERSHIP_ARTIFACT_DIR;
/// see obs::ArtifactDir) as <tag>.* for the CI upload-on-failure path,
/// schema-stamped by obs::WriteArtifact; silently a no-op when neither
/// variable is set (local runs).
void DumpArtifacts(const std::string& tag, const ChaosClusterResult& r) {
  if (obs::ArtifactDir(obs::ArtifactKind::kMembership).empty()) return;
  {
    std::ostringstream summary;
    summary << r.Summary(/*include_fault_lines=*/true);
    summary << "missing=" << r.missing.size() << " extra=" << r.extra.size()
            << " voided=" << r.voided << '\n';
    obs::WriteArtifact(obs::ArtifactKind::kMembership, tag + ".summary.txt",
                       summary.str());
  }
  for (std::size_t rank = 0; rank < r.obs.size(); ++rank) {
    obs::WriteArtifact(obs::ArtifactKind::kMembership,
                       tag + ".rank" + std::to_string(rank) + ".csv",
                       r.obs[rank]->recorder.ExportCsv());
  }
  if (!r.trace_json.empty()) {
    obs::WriteArtifact(obs::ArtifactKind::kMembership, tag + ".trace.json",
                       r.trace_json);
  }
}

// ---------------------------------------------------------------------------
// Graceful leave: zero gaps, zero duplicates.

// A member drains group-by-group and retires to standby mid-run, with buddy
// replication on (replicas must re-home off the leaver). Nothing may be
// lost (missing empty: no output gap), nothing double-delivered (extra
// empty and no surviving (group, epoch) tag from two ranks), and the
// collector's relayed counters must mirror the master's.
TEST(MembershipChaosTest, GracefulLeaveZeroGapZeroDuplicates) {
  ChaosClusterOptions opts = ElasticBaseOptions(101);
  opts.cfg.replication.enabled = true;
  opts.cfg.replication.ckpt_interval_epochs = 2;
  opts.wall.membership = {MembershipEvent{/*epoch=*/4, /*join=*/false,
                                          /*slave=*/1}};
  ChaosClusterResult r = RunChaosCluster(opts);
  DumpArtifacts("graceful_leave", r);
  EXPECT_EQ(r.master.dead_slaves, 0u);
  EXPECT_EQ(r.master.leaves, 1u);
  EXPECT_EQ(r.master.joins, 0u);
  EXPECT_GT(r.master.drain_moves, 0u);
  EXPECT_GT(r.master.buddy_handovers, 0u);  // the leaver was some ring's buddy
  EXPECT_EQ(r.master.membership_skipped, 0u);
  EXPECT_GT(r.master.membership_epochs, 0u);
  // Zero output gaps, zero duplicates.
  EXPECT_TRUE(r.exact) << "missing=" << r.missing.size()
                       << " extra=" << r.extra.size();
  EXPECT_EQ(r.dup_group_epoch_ranks, 0u);
  // The collector's shutdown payload mirrors the transition counters.
  EXPECT_EQ(r.collector.leaves, r.master.leaves);
  EXPECT_EQ(r.collector.joins, r.master.joins);
  EXPECT_EQ(r.collector.drain_moves, r.master.drain_moves);
}

// The retired slave may rejoin: leave then re-join the same rank. Both
// transitions complete and the answer stays exact.
TEST(MembershipChaosTest, LeaveThenRejoinSameRank) {
  ChaosClusterOptions opts = ElasticBaseOptions(102);
  opts.cfg.replication.enabled = true;
  opts.wall.membership = {
      MembershipEvent{/*epoch=*/4, /*join=*/false, /*slave=*/2},
      MembershipEvent{/*epoch=*/14, /*join=*/true, /*slave=*/2},
  };
  ChaosClusterResult r = RunChaosCluster(opts);
  DumpArtifacts("leave_then_rejoin", r);
  EXPECT_EQ(r.master.dead_slaves, 0u);
  EXPECT_EQ(r.master.leaves, 1u);
  EXPECT_EQ(r.master.joins, 1u);
  EXPECT_EQ(r.master.membership_skipped, 0u);
  EXPECT_TRUE(r.exact);
  EXPECT_EQ(r.dup_group_epoch_ranks, 0u);
}

// ---------------------------------------------------------------------------
// Join: a standby is admitted mid-run and serves.

TEST(MembershipChaosTest, JoinAdmitsStandbyAndServesExact) {
  ChaosClusterOptions opts = ElasticBaseOptions(103);
  opts.cfg.num_slaves = 4;
  opts.cfg.initial_active_slaves = 3;  // rank 4 (slave idx 3) idles as standby
  opts.cfg.replication.enabled = true;
  opts.cfg.replication.ckpt_interval_epochs = 2;
  opts.wall.membership = {MembershipEvent{/*epoch=*/4, /*join=*/true,
                                          /*slave=*/3}};
  ChaosClusterResult r = RunChaosCluster(opts);
  DumpArtifacts("join_admits_standby", r);
  EXPECT_EQ(r.master.dead_slaves, 0u);
  EXPECT_EQ(r.master.joins, 1u);
  EXPECT_EQ(r.master.leaves, 0u);
  EXPECT_GT(r.master.drain_moves, 0u);      // the joiner received a share
  EXPECT_GT(r.master.buddy_handovers, 0u);  // ring successors changed
  EXPECT_TRUE(r.exact) << "missing=" << r.missing.size()
                       << " extra=" << r.extra.size();
  EXPECT_EQ(r.dup_group_epoch_ranks, 0u);
  EXPECT_EQ(r.collector.joins, 1u);
  // The joiner (slave index 3) actually served: it produced outputs or at
  // least processed tuples after admission.
  EXPECT_GT(r.slaves[3].tuples_processed, 0u);
  EXPECT_GT(r.slaves[3].groups_moved_in, 0u);
}

// ---------------------------------------------------------------------------
// Determinism: seeded schedules, byte-identical across worker counts.

// A seeded valid-by-construction join/leave schedule, run with workers in
// {1, 4}: the output set, the merged Chrome trace, and the (stripped)
// per-rank recorder exports must be byte-identical -- every transition step
// lands at a deterministic epoch boundary, so the worker count cannot leak
// into any deterministic artifact. Replication stays off and migrations
// suppressed, as in the worker matrix: checkpoint-ack arrival epochs are
// wall-racy by design.
TEST(MembershipChaosTest, SeededScheduleMatrixIsByteIdenticalAcrossWorkers) {
  for (std::uint64_t seed : {11ull, 23ull}) {
    ChaosClusterOptions opts = ElasticBaseOptions(300 + seed);
    opts.cfg.num_slaves = 4;
    opts.cfg.initial_active_slaves = 3;
    opts.cfg.balance.th_sup = 2.0;  // suppress wall-timing-dependent moves
    opts.trace_events = true;
    opts.wall.membership = MakeMembershipSchedule(
        seed, /*count=*/3, /*num_slaves=*/4, /*initial_members=*/3);
    ASSERT_FALSE(opts.wall.membership.empty()) << "seed=" << seed;

    struct RunArtifacts {
      std::uint32_t workers;
      std::string outputs;
      std::string trace;
      std::string summary;
      std::vector<std::string> csv;
      std::vector<std::string> jsonl;
    };
    std::vector<RunArtifacts> runs;
    for (std::uint32_t workers : {1u, 4u}) {
      opts.cfg.slave.workers = workers;
      ChaosClusterResult r = RunChaosCluster(opts);
      ASSERT_TRUE(r.exact) << "seed=" << seed << " workers=" << workers
                           << " missing=" << r.missing.size()
                           << " extra=" << r.extra.size();
      EXPECT_EQ(r.dup_group_epoch_ranks, 0u) << "seed=" << seed;
      EXPECT_EQ(r.master.joins + r.master.leaves,
                opts.wall.membership.size())
          << "seed=" << seed << " workers=" << workers;
      EXPECT_EQ(r.master.membership_skipped, 0u);
      if (::testing::Test::HasFailure()) {
        DumpArtifacts("schedule_matrix_seed" + std::to_string(seed) +
                          "_w" + std::to_string(workers),
                      r);
      }
      RunArtifacts a;
      a.workers = workers;
      a.outputs = PairsDigest(r.outputs);
      a.trace = r.trace_json;
      a.summary = r.Summary(/*include_fault_lines=*/false);
      for (Rank rank = 0; rank <= opts.cfg.num_slaves; ++rank) {
        a.csv.push_back(r.obs[rank]->recorder.ExportCsv());
        a.jsonl.push_back(r.obs[rank]->recorder.ExportJsonl());
      }
      runs.push_back(std::move(a));
    }

    const RunArtifacts& base = runs[0];
    ASSERT_FALSE(base.outputs.empty());
    ASSERT_FALSE(base.trace.empty());
    for (std::size_t i = 1; i < runs.size(); ++i) {
      const RunArtifacts& run = runs[i];
      EXPECT_EQ(run.outputs, base.outputs)
          << "seed=" << seed << " workers=" << run.workers;
      EXPECT_EQ(run.trace, base.trace)
          << "seed=" << seed << " workers=" << run.workers;
      EXPECT_EQ(run.summary, base.summary)
          << "seed=" << seed << " workers=" << run.workers;
      for (std::size_t rank = 0; rank < base.csv.size(); ++rank) {
        EXPECT_EQ(StripWorkerCell(run.csv[rank]),
                  StripWorkerCell(base.csv[rank]))
            << "seed=" << seed << " workers=" << run.workers
            << " rank=" << rank;
        EXPECT_EQ(StripWorkerCell(run.jsonl[rank]),
                  StripWorkerCell(base.jsonl[rank]))
            << "seed=" << seed << " workers=" << run.workers
            << " rank=" << rank;
      }
    }
  }
}

// Per-k repeatability: two same-seed runs of a membership schedule at
// workers=4 agree byte-for-byte including the full summary.
TEST(MembershipChaosTest, SameSeedScheduleSameArtifacts) {
  ChaosClusterOptions opts = ElasticBaseOptions(104);
  opts.cfg.num_slaves = 4;
  opts.cfg.initial_active_slaves = 3;
  opts.cfg.balance.th_sup = 2.0;
  opts.cfg.slave.workers = 4;
  opts.trace_events = true;
  opts.wall.membership = MakeMembershipSchedule(
      /*seed=*/7, /*count=*/2, /*num_slaves=*/4, /*initial_members=*/3);
  ChaosClusterResult a = RunChaosCluster(opts);
  ChaosClusterResult b = RunChaosCluster(opts);
  ASSERT_TRUE(a.exact);
  EXPECT_EQ(PairsDigest(a.outputs), PairsDigest(b.outputs));
  EXPECT_EQ(a.trace_json, b.trace_json);
  for (Rank r = 0; r <= opts.cfg.num_slaves; ++r) {
    EXPECT_EQ(a.obs[r]->recorder.ExportCsv(), b.obs[r]->recorder.ExportCsv())
        << "rank " << r;
  }
  EXPECT_EQ(a.Summary(/*include_fault_lines=*/true),
            b.Summary(/*include_fault_lines=*/true));
}

// ---------------------------------------------------------------------------
// Crashes racing membership transitions.

// A crash while a membership transition drains groups must degrade cleanly
// to the failover path: one eviction, exact output (replication on), no
// duplicated (group, epoch) delivery. Three racing roles, each at workers
// in {1, 4}:
//   * the LEAVER crashes mid-drain (the transition aborts; its remaining
//     groups fail over to their buddies);
//   * a drain RECIPIENT crashes (the drained groups fail over again);
//   * a donor MEMBER crashes while a join rebalances toward the joiner.
struct RacingCrashCase {
  const char* tag;
  bool join;           // the scheduled transition
  SlaveIdx slave;      // its subject
  Rank crash_rank;     // who the fault schedule kills
};

class MembershipRacingCrashTest
    : public ::testing::TestWithParam<RacingCrashCase> {};

TEST_P(MembershipRacingCrashTest, FailsOverCleanly) {
  const RacingCrashCase& c = GetParam();
  for (std::uint32_t workers : {1u, 4u}) {
    ChaosClusterOptions opts = ElasticBaseOptions(200);
    opts.cfg.num_slaves = 4;
    opts.cfg.initial_active_slaves = c.join ? 3 : 4;
    opts.cfg.slave.workers = workers;
    opts.cfg.replication.enabled = true;
    opts.cfg.replication.ckpt_interval_epochs = 2;
    opts.cfg.cluster.elastic.drain_groups_per_epoch = 1;  // widen the race
    opts.wall.recv_timeout_us = 30 * kUsPerMs;
    opts.wall.recv_max_retries = 2;
    opts.wall.membership = {MembershipEvent{/*epoch=*/4, c.join, c.slave}};
    opts.faults.crash_rank = c.crash_rank;
    opts.faults.crash_after_batches = 8;
    ChaosClusterResult r = RunChaosCluster(opts);
    if (r.master.dead_slaves != 1u || !r.exact ||
        r.dup_group_epoch_ranks != 0u) {
      DumpArtifacts(std::string("racing_crash_") + c.tag + "_w" +
                        std::to_string(workers),
                    r);
    }
    EXPECT_EQ(r.master.dead_slaves, 1u) << c.tag << " workers=" << workers;
    EXPECT_GT(r.master.groups_failed_over, 0u) << c.tag;
    EXPECT_TRUE(r.exact) << c.tag << " workers=" << workers
                         << " missing=" << r.missing.size()
                         << " extra=" << r.extra.size()
                         << " voided=" << r.voided;
    EXPECT_EQ(r.dup_group_epoch_ranks, 0u) << c.tag;
  }
}

INSTANTIATE_TEST_SUITE_P(
    RacingRoles, MembershipRacingCrashTest,
    ::testing::Values(
        // Leave of slave idx 1 (rank 2); the leaver itself crashes.
        RacingCrashCase{"leaver", false, 1, 2},
        // Leave of slave idx 1; a drain recipient / survivor crashes.
        RacingCrashCase{"recipient", false, 1, 3},
        // Join of standby idx 3; a donor member crashes mid-rebalance.
        RacingCrashCase{"join_donor", true, 3, 1}),
    [](const ::testing::TestParamInfo<RacingCrashCase>& param_info) {
      return std::string(param_info.param.tag);
    });

// ---------------------------------------------------------------------------
// Bounded handshake: frame delays force resends, counted as a metric, and
// the join still completes (satellite: per-frame timeout + capped backoff).

TEST(MembershipChaosTest, DelayedHandshakeRetriesAndStillAdmits) {
  ChaosClusterOptions opts = ElasticBaseOptions(105);
  opts.cfg.num_slaves = 4;
  opts.cfg.initial_active_slaves = 3;
  opts.wall.membership = {MembershipEvent{/*epoch=*/4, /*join=*/true,
                                          /*slave=*/3}};
  // Every frame is delayed past the first handshake timeout (15ms), so the
  // kJoinCmd is provably resent at least once; the per-epoch load-report
  // budget (8 strikes x 15ms = 120ms) still covers the worst round trip
  // (~2 x 40ms), so no slave is wrongly evicted.
  opts.wall.recv_timeout_us = 15 * kUsPerMs;
  opts.wall.recv_max_retries = 7;
  opts.faults.delay_prob = 1.0;
  opts.faults.delay_min_us = 30 * kUsPerMs;
  opts.faults.delay_max_us = 40 * kUsPerMs;
  ChaosClusterResult r = RunChaosCluster(opts);
  DumpArtifacts("delayed_handshake", r);
  EXPECT_EQ(r.master.dead_slaves, 0u);
  EXPECT_EQ(r.master.joins, 1u);
  EXPECT_GE(r.master.handshake_retries, 1u);
  EXPECT_TRUE(r.exact) << "missing=" << r.missing.size()
                       << " extra=" << r.extra.size();
  // The retry tally is a stable registry counter on the master.
  EXPECT_EQ(r.obs[0]->registry.CounterValue("master_handshake_retries"),
            r.master.handshake_retries);
}

// ---------------------------------------------------------------------------
// Policy loop.

// One overloaded member, two standbys: consecutive surge epochs must make
// the policy propose scale-out, the admission runs as a normal transition,
// and the answer stays exact.
TEST(MembershipChaosTest, PolicyProposesScaleOutOnSurge) {
  ChaosClusterOptions opts = ElasticBaseOptions(106);
  opts.cfg.initial_active_slaves = 1;
  opts.cfg.cluster.elastic.policy = true;
  opts.cfg.cluster.elastic.surge_occupancy = 0.5;
  opts.cfg.cluster.elastic.surge_epochs = 2;
  opts.cfg.cluster.elastic.cooldown_epochs = 2;
  opts.cfg.balance.slave_buffer_bytes = 4096;  // small: occupancy saturates
  opts.cfg.balance.th_sup = 2.0;  // isolate the policy from migrations
  opts.wall.slave_spin_us_per_tuple = {400, 400, 400};  // force a backlog
  ChaosClusterResult r = RunChaosCluster(opts);
  DumpArtifacts("policy_scale_out", r);
  EXPECT_EQ(r.master.dead_slaves, 0u);
  EXPECT_GE(r.master.policy_scale_outs, 1u);
  EXPECT_GE(r.master.joins, 1u);
  EXPECT_TRUE(r.exact) << "missing=" << r.missing.size()
                       << " extra=" << r.extra.size();
}

// Two idle members: consecutive idle epochs must make the policy propose
// scale-in down to the min_members floor (one member), via a graceful
// drain -- exact output, no duplicates.
TEST(MembershipChaosTest, PolicyProposesScaleInWhenIdle) {
  ChaosClusterOptions opts = ElasticBaseOptions(107);
  opts.cfg.initial_active_slaves = 2;
  opts.cfg.cluster.elastic.policy = true;
  opts.cfg.cluster.elastic.idle_occupancy = 2.0;  // everything counts as idle
  opts.cfg.cluster.elastic.idle_epochs = 3;
  opts.cfg.cluster.elastic.cooldown_epochs = 2;
  opts.cfg.cluster.elastic.min_members = 1;
  ChaosClusterResult r = RunChaosCluster(opts);
  DumpArtifacts("policy_scale_in", r);
  EXPECT_EQ(r.master.dead_slaves, 0u);
  EXPECT_GE(r.master.policy_scale_ins, 1u);
  EXPECT_GE(r.master.leaves, 1u);
  EXPECT_TRUE(r.exact);
  EXPECT_EQ(r.dup_group_epoch_ranks, 0u);
}

// ---------------------------------------------------------------------------
// Validity guard.

// Joining a rank that is already a member is skipped (counted, not
// executed); the run is otherwise undisturbed.
TEST(MembershipChaosTest, InvalidEventIsSkippedAndCounted) {
  ChaosClusterOptions opts = ElasticBaseOptions(108);
  opts.wall.membership = {MembershipEvent{/*epoch=*/4, /*join=*/true,
                                          /*slave=*/1}};  // already a member
  ChaosClusterResult r = RunChaosCluster(opts);
  EXPECT_EQ(r.master.membership_skipped, 1u);
  EXPECT_EQ(r.master.joins, 0u);
  EXPECT_EQ(r.master.leaves, 0u);
  EXPECT_EQ(r.master.drain_moves, 0u);
  EXPECT_TRUE(r.exact);
}

// Elastic off: the membership machinery must not run at all -- a schedule
// is ignored, every counter stays zero, and the fixed-set behavior is
// preserved (the seed regression suite pins the rest).
TEST(MembershipChaosTest, DisabledElasticIgnoresSchedule) {
  ChaosClusterOptions opts = ElasticBaseOptions(109);
  opts.cfg.cluster.elastic.enabled = false;
  opts.wall.membership = {MembershipEvent{/*epoch=*/4, /*join=*/false,
                                          /*slave=*/1}};
  ChaosClusterResult r = RunChaosCluster(opts);
  EXPECT_EQ(r.master.joins, 0u);
  EXPECT_EQ(r.master.leaves, 0u);
  EXPECT_EQ(r.master.drain_moves, 0u);
  EXPECT_EQ(r.master.membership_epochs, 0u);
  EXPECT_EQ(r.master.membership_skipped, 0u);
  EXPECT_TRUE(r.exact);
}

}  // namespace
}  // namespace sjoin
