#include "harness/chaos_harness.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <thread>
#include <utility>

#include "common/rng.h"
#include "core/replayer.h"
#include "join/epoch_tag_sink.h"
#include "join/sink.h"
#include "net/inproc_transport.h"
#include "net/recording_tap.h"
#include "obs/artifact.h"
#include "obs/trace_check.h"

namespace sjoin {

namespace {

/// Fresh per-run directory for auto-recorded bundles (cfg.obs.record_dir
/// empty): unique under the system temp dir, deleted again unless the run
/// fails its differential check.
std::string MakeTempRecordDir() {
  static std::atomic<std::uint64_t> counter{0};
  std::error_code ec;
  const std::filesystem::path base =
      std::filesystem::temp_directory_path(ec);
  if (ec) return {};
  const std::string name =
      "sjrec_" + std::to_string(::getpid()) + "_" +
      std::to_string(counter.fetch_add(1, std::memory_order_relaxed));
  const std::filesystem::path dir = base / name;
  std::filesystem::create_directories(dir, ec);
  if (ec) return {};
  return dir.string();
}

void WriteFileRaw(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << content;
}

std::string ReadFileRaw(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

JoinPair PairOf(const JoinOutput& out) {
  return JoinPair{out.left.ts, out.right.ts, out.left.key};
}

/// FNV-1a over the sorted pair list: a compact, order-stable output digest.
std::uint64_t HashPairs(const std::vector<JoinPair>& pairs) {
  std::uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xFF;
      h *= 1099511628211ULL;
    }
  };
  for (const JoinPair& p : pairs) {
    mix(static_cast<std::uint64_t>(p.ts0));
    mix(static_cast<std::uint64_t>(p.ts1));
    mix(p.key);
  }
  return h;
}

}  // namespace

std::string ChaosClusterResult::Summary(bool include_fault_lines) const {
  std::ostringstream os;
  os << "tuples_sent=" << master.tuples_sent << " epochs=" << master.epochs
     << " migrations=" << master.migrations
     << " dead_slaves=" << master.dead_slaves
     << " groups_rehosted=" << master.groups_rehosted
     << " failed_over=" << master.groups_failed_over << "\n";
  os << "outputs=" << outputs.size() << " hash=" << HashPairs(outputs)
     << " missing=" << missing.size() << " extra=" << extra.size() << "\n";
  // Elastic membership line (omitted when no membership machinery ran, so
  // pre-elastic scenarios keep their original summaries). All of these are
  // epoch-boundary deterministic for scheduled transitions.
  if (master.joins != 0 || master.leaves != 0 || master.drain_moves != 0 ||
      master.membership_epochs != 0 || master.membership_skipped != 0) {
    os << "joins=" << master.joins << " leaves=" << master.leaves
       << " drain_moves=" << master.drain_moves
       << " handovers=" << master.buddy_handovers
       << " membership_epochs=" << master.membership_epochs
       << " skipped=" << master.membership_skipped
       << " dup_group_epoch=" << dup_group_epoch_ranks << "\n";
  }
  if (include_fault_lines) {
    for (std::size_t r = 0; r < fault_stats.size(); ++r) {
      const FaultStats& fs = fault_stats[r];
      os << "rank" << r << ": delivered=" << fs.delivered
         << " delayed=" << fs.delayed << " duplicated=" << fs.duplicated
         << " retransmitted=" << fs.retransmitted << "\n";
    }
  }
  // The collector's raw output count is excluded: it includes whatever a
  // dying slave drained before the crash (a thread race, see the `drained`
  // note above); the deterministic output set is already pinned by the
  // outputs=/hash= line.
  os << "collector: reports=" << collector.reports << "\n";
  return std::move(os).str();
}

ChaosClusterResult RunChaosCluster(const ChaosClusterOptions& opts) {
  const Rank n = opts.cfg.num_slaves;
  // Wall mode also selects the lock-free mailbox, so the chaos matrix can
  // pin the byte-identity of both hot-path swaps at once.
  InProcHub hub(n + 2, opts.cfg.slave.wall_mode ? MailboxMode::kLockFree
                                                : MailboxMode::kMutex);

  ChaosClusterResult result;
  result.slaves.resize(n);
  for (Rank r = 0; r < n + 2; ++r) {
    result.obs.push_back(std::make_unique<obs::NodeObs>());
    result.obs[r]->trace.SetRank(r);
    result.obs[r]->trace.SetEnabled(opts.trace_events);
  }

  // Every run records: to cfg.obs.record_dir when set, else to a temp dir
  // kept only on differential failure. The tap is outermost (around the
  // fault endpoint) so bundles hold frames exactly as the node saw them,
  // after injection.
  const bool explicit_record_dir = !opts.cfg.obs.record_dir.empty();
  const std::string record_dir =
      explicit_record_dir ? opts.cfg.obs.record_dir : MakeTempRecordDir();

  std::vector<std::unique_ptr<FaultEndpoint>> endpoints(n + 2);
  std::vector<std::unique_ptr<RecordingTap>> taps(n + 2);
  for (Rank r = 0; r < n + 2; ++r) {
    endpoints[r] =
        std::make_unique<FaultEndpoint>(hub.Endpoint(r), opts.faults);
    endpoints[r]->AttachMetrics(&result.obs[r]->registry);
    taps[r] = std::make_unique<RecordingTap>(*endpoints[r]);
    if (!record_dir.empty()) {
      RecordingTap::Info info;
      info.input_trace = r == 0 ? &opts.trace : nullptr;
      info.wall_run_for = opts.wall.run_for;
      info.wall_recv_timeout_us = opts.wall.recv_timeout_us;
      info.wall_recv_max_retries = opts.wall.recv_max_retries;
      taps[r]->Open(record_dir, opts.cfg, info);
    }
  }

  std::vector<EpochTagSink> sinks;
  sinks.reserve(n);
  for (Rank s = 0; s < n; ++s) {
    sinks.emplace_back(opts.cfg.join.num_partitions);
  }
  WallOptions wall = opts.wall;
  wall.input_trace = &opts.trace;
  wall.slave_extra_sinks.clear();
  wall.slave_epoch_sinks.clear();
  for (Rank s = 0; s < n; ++s) wall.slave_epoch_sinks.push_back(&sinks[s]);
  wall.master_obs = result.obs[0].get();
  wall.slave_obs.clear();
  for (Rank s = 1; s <= n; ++s) wall.slave_obs.push_back(result.obs[s].get());

  std::vector<std::thread> slave_threads;
  slave_threads.reserve(n);
  for (Rank s = 1; s <= n; ++s) {
    slave_threads.emplace_back([&, s] {
      result.slaves[s - 1] = RunSlaveNode(*taps[s], opts.cfg, wall);
    });
  }
  std::thread collector_thread([&] {
    result.collector =
        RunCollectorNode(*taps[n + 1], opts.cfg, result.obs[n + 1].get());
  });

  result.master = RunMasterNode(*taps[0], opts.cfg, wall);
  // The collector exits once every live slave delivered its final stats and
  // shutdown; a crashed-hanging slave never will, so tear the hub down only
  // after the collector is done, to unblock that slave's threads.
  collector_thread.join();
  hub.Shutdown();
  for (std::thread& t : slave_threads) t.join();

  for (Rank r = 0; r < n + 2; ++r) {
    result.fault_stats.push_back(endpoints[r]->Stats());
  }

  if (opts.trace_events) {
    std::vector<const obs::TraceSink*> sinks_by_rank;
    for (Rank r = 0; r < n + 2; ++r) {
      sinks_by_rank.push_back(&result.obs[r]->trace);
    }
    result.trace_json = obs::ExportChromeJson(obs::MergeTraces(sinks_by_rank));
    // Per-rank trace files, as a real deployment would write them -- the
    // inputs of trace_check --stitch (and of the stitch tests).
    for (Rank r = 0; r < n + 2; ++r) {
      const obs::TraceSink* one[] = {sinks_by_rank[r]};
      result.rank_traces.push_back(
          obs::ExportChromeJson(obs::MergeTraces(one)));
    }
  }

  // Failover output-voiding rule: outputs tagged (pid, replay_from <=
  // epoch <= replay_to) count only from the failover target -- the replay
  // regenerates exactly those (see core/runner.h FailoverRecord). Epochs
  // past the verdict belong to whoever owns the group then (an elastic
  // drain may legitimately move it off the target).
  std::map<std::pair<std::uint32_t, std::uint64_t>, std::uint32_t>
      group_epoch_ranks;  // (pid, epoch) -> bitmask of producing ranks
  for (Rank s = 0; s < n; ++s) {
    for (const TaggedOutput& t : sinks[s].Outputs()) {
      bool voided = false;
      for (const FailoverRecord& f : result.master.failovers) {
        if (t.pid == f.pid && t.epoch >= f.replay_from &&
            t.epoch <= f.replay_to && s + 1 != f.target) {
          voided = true;
          break;
        }
      }
      if (voided) {
        ++result.voided;
        continue;
      }
      group_epoch_ranks[{t.pid, t.epoch}] |= 1u << s;
      result.outputs.push_back(PairOf(t.out));
    }
  }
  // A surviving (group, epoch) tag produced by two ranks is a duplicated
  // delivery (one epoch's tuples for one group have exactly one owner).
  for (const auto& [ge, mask] : group_epoch_ranks) {
    if ((mask & (mask - 1)) != 0) ++result.dup_group_epoch_ranks;
  }
  std::sort(result.outputs.begin(), result.outputs.end());
  result.reference =
      ReferenceSlidingJoin(opts.trace, opts.cfg.join.window);
  std::set_difference(result.reference.begin(), result.reference.end(),
                      result.outputs.begin(), result.outputs.end(),
                      std::back_inserter(result.missing));
  std::set_difference(result.outputs.begin(), result.outputs.end(),
                      result.reference.begin(), result.reference.end(),
                      std::back_inserter(result.extra));
  result.exact = result.missing.empty() && result.extra.empty();

  // Close the bundles, then pair them with the live deterministic artifacts
  // (per-rank tagged outputs, epoch CSV/JSONL, traces): the directory is a
  // self-contained repro that `sjoin_replay --verify` can gate byte-for-byte.
  for (Rank r = 0; r < n + 2; ++r) taps[r]->Finish();
  if (!record_dir.empty() && (explicit_record_dir || !result.exact)) {
    for (Rank s = 1; s <= n; ++s) {
      const std::string rs = std::to_string(s);
      WriteFileRaw(record_dir + "/outputs_rank" + rs + ".csv",
                   FormatTaggedOutputs(sinks[s - 1].Outputs()));
      WriteFileRaw(record_dir + "/epochs_rank" + rs + ".csv",
                   result.obs[s]->recorder.ExportCsv());
      WriteFileRaw(record_dir + "/epochs_rank" + rs + ".jsonl",
                   result.obs[s]->recorder.ExportJsonl());
    }
    WriteFileRaw(record_dir + "/epochs_rank0.csv",
                 result.obs[0]->recorder.ExportCsv());
    for (Rank r = 0; r < result.rank_traces.size(); ++r) {
      WriteFileRaw(record_dir + "/trace_rank" + std::to_string(r) + ".json",
                   result.rank_traces[r]);
    }
    result.recording.dir = record_dir;
    result.recording.kept = true;
  }

  // Output-diff failure: leave a post-mortem behind. Every rank's flight
  // ring, the stitched distributed trace (when tracing was on), and the
  // record/replay bundles land in the artifact directory CI uploads; a
  // no-op when no artifact env var is set.
  if (!result.exact) {
    const std::string summary = Summarize(opts.cfg);
    for (Rank r = 0; r < n + 2; ++r) {
      obs::WriteArtifact(obs::ArtifactKind::kChaos,
                         "flight_rank" + std::to_string(r) + ".txt",
                         result.obs[r]->flight.Dump(), summary);
    }
    if (!result.rank_traces.empty()) {
      obs::WriteArtifact(obs::ArtifactKind::kChaos, "stitched_trace.json",
                         obs::StitchTraces(result.rank_traces).json, summary);
    }
    for (Rank r = 0; r < n + 2; ++r) {
      const std::string bundle =
          ReadFileRaw(obs::RecordingBundlePath(record_dir, r));
      if (!bundle.empty()) {
        obs::WriteArtifact(obs::ArtifactKind::kChaos,
                           "rank" + std::to_string(r) + ".sjrec", bundle,
                           summary);
      }
    }
  } else if (!explicit_record_dir && !record_dir.empty()) {
    std::error_code ec;
    std::filesystem::remove_all(record_dir, ec);
  }
  return result;
}

std::vector<Rec> MakeChaosTrace(std::uint64_t seed, std::size_t count,
                                Time span_us, std::uint64_t key_domain) {
  Pcg32 rng(Mix64(seed ^ 0xC4A05ULL), 7);
  std::vector<Rec> trace;
  trace.reserve(count);
  const Time step =
      std::max<Time>(1, span_us / static_cast<Time>(count > 0 ? count : 1));
  Time ts = 0;
  for (std::size_t i = 0; i < count; ++i) {
    ts += 1 + rng.NextBounded(static_cast<std::uint32_t>(step));
    Rec rec;
    rec.ts = ts;
    rec.key = rng.NextBounded(static_cast<std::uint32_t>(key_domain));
    rec.stream = static_cast<StreamId>(i & 1);
    trace.push_back(rec);
  }
  return trace;
}

std::vector<MembershipEvent> MakeMembershipSchedule(
    std::uint64_t seed, std::size_t count, std::uint32_t num_slaves,
    std::uint32_t initial_members, std::uint64_t first_epoch,
    std::uint64_t gap_epochs) {
  Pcg32 rng(Mix64(seed ^ 0x3E1A57ULL), 11);
  std::vector<bool> member(num_slaves, false);
  for (std::uint32_t s = 0; s < initial_members && s < num_slaves; ++s) {
    member[s] = true;
  }
  auto pick = [&](bool want_member) -> std::int64_t {
    std::vector<std::uint32_t> pool;
    for (std::uint32_t s = 0; s < num_slaves; ++s) {
      if (member[s] == want_member) pool.push_back(s);
    }
    if (pool.empty()) return -1;
    return pool[rng.NextBounded(static_cast<std::uint32_t>(pool.size()))];
  };
  std::vector<MembershipEvent> schedule;
  std::uint64_t epoch = first_epoch;
  std::uint32_t members = std::min(initial_members, num_slaves);
  for (std::size_t i = 0; i < count; ++i, epoch += gap_epochs) {
    const bool can_join = members < num_slaves;
    const bool can_leave = members > 1;
    if (!can_join && !can_leave) break;
    bool join = can_join && (!can_leave || rng.NextBounded(2) == 0);
    const std::int64_t slave = pick(/*want_member=*/!join);
    if (slave < 0) continue;
    member[static_cast<std::uint32_t>(slave)] = join;
    members = join ? members + 1 : members - 1;
    schedule.push_back(
        MembershipEvent{epoch, join, static_cast<SlaveIdx>(slave)});
  }
  return schedule;
}

}  // namespace sjoin
