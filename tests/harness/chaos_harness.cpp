#include "harness/chaos_harness.h"

#include <algorithm>
#include <memory>
#include <sstream>
#include <thread>

#include "common/rng.h"
#include "join/epoch_tag_sink.h"
#include "join/sink.h"
#include "net/inproc_transport.h"

namespace sjoin {

namespace {

JoinPair PairOf(const JoinOutput& out) {
  return JoinPair{out.left.ts, out.right.ts, out.left.key};
}

/// FNV-1a over the sorted pair list: a compact, order-stable output digest.
std::uint64_t HashPairs(const std::vector<JoinPair>& pairs) {
  std::uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xFF;
      h *= 1099511628211ULL;
    }
  };
  for (const JoinPair& p : pairs) {
    mix(static_cast<std::uint64_t>(p.ts0));
    mix(static_cast<std::uint64_t>(p.ts1));
    mix(p.key);
  }
  return h;
}

}  // namespace

std::string ChaosClusterResult::Summary(bool include_fault_lines) const {
  std::ostringstream os;
  os << "tuples_sent=" << master.tuples_sent << " epochs=" << master.epochs
     << " migrations=" << master.migrations
     << " dead_slaves=" << master.dead_slaves
     << " groups_rehosted=" << master.groups_rehosted
     << " failed_over=" << master.groups_failed_over << "\n";
  os << "outputs=" << outputs.size() << " hash=" << HashPairs(outputs)
     << " missing=" << missing.size() << " extra=" << extra.size() << "\n";
  if (include_fault_lines) {
    for (std::size_t r = 0; r < fault_stats.size(); ++r) {
      const FaultStats& fs = fault_stats[r];
      os << "rank" << r << ": delivered=" << fs.delivered
         << " delayed=" << fs.delayed << " duplicated=" << fs.duplicated
         << " retransmitted=" << fs.retransmitted << "\n";
    }
  }
  // The collector's raw output count is excluded: it includes whatever a
  // dying slave drained before the crash (a thread race, see the `drained`
  // note above); the deterministic output set is already pinned by the
  // outputs=/hash= line.
  os << "collector: reports=" << collector.reports << "\n";
  return std::move(os).str();
}

ChaosClusterResult RunChaosCluster(const ChaosClusterOptions& opts) {
  const Rank n = opts.cfg.num_slaves;
  InProcHub hub(n + 2);

  ChaosClusterResult result;
  result.slaves.resize(n);
  for (Rank r = 0; r < n + 2; ++r) {
    result.obs.push_back(std::make_unique<obs::NodeObs>());
    result.obs[r]->trace.SetRank(r);
    result.obs[r]->trace.SetEnabled(opts.trace_events);
  }

  std::vector<std::unique_ptr<FaultEndpoint>> endpoints(n + 2);
  for (Rank r = 0; r < n + 2; ++r) {
    endpoints[r] =
        std::make_unique<FaultEndpoint>(hub.Endpoint(r), opts.faults);
    endpoints[r]->AttachMetrics(&result.obs[r]->registry);
  }

  std::vector<EpochTagSink> sinks;
  sinks.reserve(n);
  for (Rank s = 0; s < n; ++s) {
    sinks.emplace_back(opts.cfg.join.num_partitions);
  }
  WallOptions wall = opts.wall;
  wall.input_trace = &opts.trace;
  wall.slave_extra_sinks.clear();
  wall.slave_epoch_sinks.clear();
  for (Rank s = 0; s < n; ++s) wall.slave_epoch_sinks.push_back(&sinks[s]);
  wall.master_obs = result.obs[0].get();
  wall.slave_obs.clear();
  for (Rank s = 1; s <= n; ++s) wall.slave_obs.push_back(result.obs[s].get());

  std::vector<std::thread> slave_threads;
  slave_threads.reserve(n);
  for (Rank s = 1; s <= n; ++s) {
    slave_threads.emplace_back([&, s] {
      result.slaves[s - 1] = RunSlaveNode(*endpoints[s], opts.cfg, wall);
    });
  }
  std::thread collector_thread([&] {
    result.collector = RunCollectorNode(*endpoints[n + 1], opts.cfg);
  });

  result.master = RunMasterNode(*endpoints[0], opts.cfg, wall);
  // The collector exits once every live slave delivered its final stats and
  // shutdown; a crashed-hanging slave never will, so tear the hub down only
  // after the collector is done, to unblock that slave's threads.
  collector_thread.join();
  hub.Shutdown();
  for (std::thread& t : slave_threads) t.join();

  for (Rank r = 0; r < n + 2; ++r) {
    result.fault_stats.push_back(endpoints[r]->Stats());
  }

  if (opts.trace_events) {
    std::vector<const obs::TraceSink*> sinks_by_rank;
    for (Rank r = 0; r < n + 2; ++r) {
      sinks_by_rank.push_back(&result.obs[r]->trace);
    }
    result.trace_json = obs::ExportChromeJson(obs::MergeTraces(sinks_by_rank));
  }

  // Failover output-voiding rule: outputs tagged (pid, epoch >= replay_from)
  // count only from the failover target -- the replay regenerates exactly
  // those (see core/runner.h FailoverRecord).
  for (Rank s = 0; s < n; ++s) {
    for (const TaggedOutput& t : sinks[s].Outputs()) {
      bool voided = false;
      for (const FailoverRecord& f : result.master.failovers) {
        if (t.pid == f.pid && t.epoch >= f.replay_from && s + 1 != f.target) {
          voided = true;
          break;
        }
      }
      if (voided) {
        ++result.voided;
        continue;
      }
      result.outputs.push_back(PairOf(t.out));
    }
  }
  std::sort(result.outputs.begin(), result.outputs.end());
  result.reference =
      ReferenceSlidingJoin(opts.trace, opts.cfg.join.window);
  std::set_difference(result.reference.begin(), result.reference.end(),
                      result.outputs.begin(), result.outputs.end(),
                      std::back_inserter(result.missing));
  std::set_difference(result.outputs.begin(), result.outputs.end(),
                      result.reference.begin(), result.reference.end(),
                      std::back_inserter(result.extra));
  result.exact = result.missing.empty() && result.extra.empty();
  return result;
}

std::vector<Rec> MakeChaosTrace(std::uint64_t seed, std::size_t count,
                                Time span_us, std::uint64_t key_domain) {
  Pcg32 rng(Mix64(seed ^ 0xC4A05ULL), 7);
  std::vector<Rec> trace;
  trace.reserve(count);
  const Time step =
      std::max<Time>(1, span_us / static_cast<Time>(count > 0 ? count : 1));
  Time ts = 0;
  for (std::size_t i = 0; i < count; ++i) {
    ts += 1 + rng.NextBounded(static_cast<std::uint32_t>(step));
    Rec rec;
    rec.ts = ts;
    rec.key = rng.NextBounded(static_cast<std::uint32_t>(key_domain));
    rec.stream = static_cast<StreamId>(i & 1);
    trace.push_back(rec);
  }
  return trace;
}

}  // namespace sjoin
