// Chaos-test harness: runs a full master/slaves/collector cluster over
// InProcTransport decorated with FaultEndpoint, under a seeded fault
// schedule, and differentially checks the cluster's join output against
// ReferenceSlidingJoin over the same input trace.
//
// The input is a fixed, timestamp-ordered trace distributed at virtual
// epoch boundaries (WallOptions::input_trace), so the tuple set every run
// joins -- and therefore the declarative answer -- is deterministic. The
// differential check then states the protocol's delivery guarantees:
//   * with delay / reorder / duplicate faults (and bounded
//     drop-with-retransmit) the cluster output must EQUAL the reference:
//     nothing lost, nothing duplicated;
//   * with a crashed slave and replication OFF the output must be a SUBSET
//     of the reference (`extra` empty): window state that died with the
//     node may lose matches, but hardening must never fabricate or
//     double-deliver one;
//   * with a crashed slave and replication ON (cfg.replication.enabled) the
//     output must EQUAL the reference: buddies rebuild the lost groups from
//     acked checkpoints and the master replays retained batches.
//
// Every slave's outputs are materialized through an EpochTagSink, and the
// harness applies the failover output-voiding rule before the differential
// check: for each FailoverRecord{pid, target, replay_from, replay_to}
// reported by the master, outputs tagged (pid, replay_from <= epoch <=
// replay_to) count only from `target` -- the replay regenerates exactly
// those, and any copy another rank produced (the dead slave pre-crash, a
// falsely-evicted slave post-verdict, or a pre-migration owner) is void.
// Epochs past the verdict (`replay_to`) were never delivered to the dead
// rank and belong to the group's then-current owner, which an elastic
// drain may legitimately have moved off the target. This is the
// collector's dedup discipline, stated over the test's materialized
// outputs.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/config.h"
#include "core/runner.h"
#include "join/reference_join.h"
#include "net/fault_transport.h"
#include "obs/obs.h"
#include "tuple/tuple.h"

namespace sjoin {

struct ChaosClusterOptions {
  SystemConfig cfg;
  WallOptions wall;    ///< input_trace / slave_extra_sinks are set by the run
  FaultConfig faults;  ///< applied to every endpoint (master included)
  std::vector<Rec> trace;  ///< timestamp-ordered input, required

  /// Enables the per-rank TraceSinks; the merged Chrome trace lands in
  /// ChaosClusterResult::trace_json. Off by default (registries and
  /// recorders are always on regardless).
  bool trace_events = false;
};

/// Where a run's record/replay bundles ended up (see RunChaosCluster).
struct ChaosRecordingInfo {
  /// Directory holding `rank<R>.sjrec` bundles plus the live deterministic
  /// artifacts (outputs_rank<R>.csv, epochs_rank<R>.csv/.jsonl, per-rank
  /// traces) -- a self-contained repro for tools/sjoin_replay. Empty when
  /// the recording was discarded (run passed under an auto-record temp dir).
  std::string dir;
  bool kept = false;  ///< false = temp recording was deleted after a pass
};

struct ChaosClusterResult {
  MasterSummary master;
  std::vector<SlaveSummary> slaves;
  CollectorSummary collector;
  std::vector<FaultStats> fault_stats;  ///< per rank, 0 .. num_slaves+1

  std::vector<JoinPair> outputs;    ///< cluster-produced pairs, sorted
  std::vector<JoinPair> reference;  ///< ground truth over the trace, sorted
  std::vector<JoinPair> missing;    ///< reference \ outputs
  std::vector<JoinPair> extra;      ///< outputs \ reference (incl. dups)
  bool exact = false;               ///< missing and extra both empty

  /// Outputs dropped by the failover voiding rule (0 without a failover).
  /// Not part of Summary(): how much a dying slave drains before the crash
  /// lands is thread-timing dependent; the post-voiding output set is not.
  std::uint64_t voided = 0;

  /// Post-voiding (group, epoch) tags produced by MORE than one slave rank.
  /// One epoch's tuples for one group go to exactly one owner, and the
  /// voiding rule strips superseded pre-failover copies, so any survivor
  /// here is a duplicated delivery -- the graceful-leave acceptance check
  /// asserts 0 across membership transitions.
  std::uint64_t dup_group_epoch_ranks = 0;

  /// Per-rank observability bundles (index = rank, 0 .. num_slaves + 1; the
  /// collector's exists but stays empty -- it has no instrumented runner
  /// state). The master's carries the ClusterMetricsView assembled from
  /// kMetrics frames. Registry counters on the fault endpoints are attached
  /// to the same bundles (volatile families).
  std::vector<std::unique_ptr<obs::NodeObs>> obs;

  /// Merged Chrome trace_event JSON over every rank's sink ("" unless
  /// ChaosClusterOptions::trace_events). Deterministic for a seeded run:
  /// wall runners stamp logical epoch time, never wall time.
  std::string trace_json;

  /// One Chrome trace document per rank (0..n+1; empty unless
  /// ChaosClusterOptions::trace_events) -- the per-process files a real
  /// deployment writes, and the inputs of obs::StitchTraces /
  /// `trace_check --stitch`.
  std::vector<std::string> rank_traces;

  /// Record/replay bundles of this run. Every chaos run is recorded: to
  /// cfg.obs.record_dir when set (always kept), else to a temp directory
  /// that is kept -- and copied into the CI artifact dir -- only when the
  /// differential check fails, so any red run ships a one-command repro
  /// (`sjoin_replay --bundle <dir>/rank<R>.sjrec`).
  ChaosRecordingInfo recording;

  /// Deterministic digest of the run: every counter that depends only on
  /// the trace, the config, and the fault seed (no wall-clock-derived
  /// quantity). Two runs with identical options must produce identical
  /// summaries -- the seeded-determinism test compares these byte for byte.
  ///
  /// Pass include_fault_lines=false in crash scenarios: the dead-slave
  /// verdict lands after real-time timeouts, so the *epoch* it falls in --
  /// and with it every post-verdict message count (redirected batches,
  /// checkpoint segments, replays) -- is wall-timing dependent. The
  /// per-rank injected-fault counters inherit that variance; everything
  /// else in the summary stays seed-deterministic even across a crash.
  std::string Summary(bool include_fault_lines = true) const;
};

/// Runs the full cluster (one thread per rank) to completion and evaluates
/// the differential check. Always returns; a harness-level deadlock would
/// mean the hardened protocol failed its no-unbounded-wait guarantee.
ChaosClusterResult RunChaosCluster(const ChaosClusterOptions& opts);

/// Builds a deterministic two-stream trace: `count` tuples alternating
/// streams, strictly increasing timestamps evenly spread over [1, span_us],
/// keys drawn from [0, key_domain) with a seeded PCG. Small domains give
/// dense matches.
std::vector<Rec> MakeChaosTrace(std::uint64_t seed, std::size_t count,
                                Time span_us, std::uint64_t key_domain);

/// Builds a seeded, valid-by-construction membership schedule for a cluster
/// of `num_slaves` ranks of which `initial_members` start as members: the
/// generator simulates the member/standby sets, so every event joins an
/// actual standby or drains an actual member while keeping at least one
/// member -- no event is skippable by the runner's validity check (an
/// eviction racing the schedule can still invalidate one at run time, which
/// the runner then skips and counts). Events are spaced `gap_epochs` apart
/// starting at `first_epoch`.
std::vector<MembershipEvent> MakeMembershipSchedule(
    std::uint64_t seed, std::size_t count, std::uint32_t num_slaves,
    std::uint32_t initial_members, std::uint64_t first_epoch = 4,
    std::uint64_t gap_epochs = 6);

}  // namespace sjoin
