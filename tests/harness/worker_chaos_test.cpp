// Worker-count determinism matrix over the full chaos cluster: same seed,
// same trace, workers in {1, 2, 4, 8} -- the cluster's join output must be
// byte-identical across the matrix, and every deterministic observability
// artifact (per-epoch recorder CSV/JSONL, merged Chrome trace) must agree
// wherever the worker count cannot legitimately appear in it. Plus the
// recovery claim: a slave crash under replication with workers=4 still
// yields exactly the reference output.
//
// What may differ across worker counts, by design:
//   * the `worker_busy_cost` counter exists only for workers > 1 (it is
//     registered lazily so the workers=1 registry stays byte-identical to
//     the pre-pool code); its recorder rows are stripped before comparing
//     a workers=1 CSV against a workers>1 CSV;
//   * nothing else -- the k in {2, 4, 8} artifacts are compared unstripped.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "harness/chaos_harness.h"
#include "obs/cluster_view.h"

namespace sjoin {
namespace {

/// Mirrors chaos_test.cpp BaseOptions: 3 slaves, short epochs, dense trace.
ChaosClusterOptions BaseOptions(std::uint64_t fault_seed) {
  ChaosClusterOptions opts;
  opts.cfg.num_slaves = 3;
  opts.cfg.join.num_partitions = 24;
  opts.cfg.join.window = 30 * kUsPerMs;
  opts.cfg.epoch.t_dist = 5 * kUsPerMs;
  opts.cfg.epoch.t_rep = 20 * kUsPerMs;
  opts.wall.run_for = 10 * kUsPerSec;
  opts.wall.recv_timeout_us = 250 * kUsPerMs;
  opts.wall.recv_max_retries = 3;
  opts.faults.seed = fault_seed;
  opts.trace = MakeChaosTrace(/*seed=*/97, /*count=*/1200,
                              /*span_us=*/150 * kUsPerMs,
                              /*key_domain=*/40);
  return opts;
}

std::string PairsDigest(const std::vector<JoinPair>& pairs) {
  std::ostringstream out;
  for (const JoinPair& p : pairs) {
    out << p.ts0 << ',' << p.ts1 << ',' << p.key << '\n';
  }
  return out.str();
}

/// Drops the worker_busy_cost cell from a recorder export: the counter is
/// only registered under a multi-worker pool, so this CSV column / JSONL
/// key is the one legitimate difference between a workers=1 and a
/// workers>1 export. CSV: locate the column in the header row and drop
/// that field everywhere; JSONL: drop the key-value pair per line.
std::string StripWorkerCell(const std::string& text) {
  constexpr std::string_view kName = "worker_busy_cost";
  std::istringstream in(text);
  std::ostringstream out;
  std::string line;
  int drop_col = -1;
  bool first_line = true;
  while (std::getline(in, line)) {
    if (!line.empty() && line.front() == '{') {  // JSONL row
      const std::string key = std::string("\"") + std::string(kName) + "\":";
      const std::size_t k = line.find(key);
      if (k != std::string::npos) {
        std::size_t end = line.find_first_of(",}", k + key.size());
        std::size_t start = k;
        if (end != std::string::npos && line[end] == ',') {
          ++end;  // key in the middle: eat its trailing comma
        } else if (start > 0 && line[start - 1] == ',') {
          --start;  // last key: eat the preceding comma instead
        }
        line.erase(start, end - start);
      }
      out << line << '\n';
      continue;
    }
    // CSV: the header (first line) names the columns.
    std::vector<std::string> cells;
    std::istringstream fields(line);
    std::string cell;
    while (std::getline(fields, cell, ',')) cells.push_back(cell);
    if (first_line) {
      for (std::size_t i = 0; i < cells.size(); ++i) {
        if (cells[i] == kName) drop_col = static_cast<int>(i);
      }
      first_line = false;
    }
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (static_cast<int>(i) == drop_col) continue;
      if (i != 0 && !(drop_col == 0 && i == 1)) out << ',';
      out << cells[i];
    }
    out << '\n';
  }
  return out.str();
}

// The matrix: a faultless run repeated with workers in {1, 2, 4, 8}. The
// output set, the trace, and the (stripped) recorder exports must all be
// byte-identical to the workers=1 run; the workers>1 runs must also agree
// with each other without stripping.
TEST(WorkerChaosTest, WorkerCountMatrixIsByteIdentical) {
  ChaosClusterOptions opts = BaseOptions(77);
  opts.cfg.balance.th_sup = 2.0;  // suppress wall-timing-dependent moves
  opts.trace_events = true;

  struct RunArtifacts {
    std::uint32_t workers;
    std::string outputs;
    std::string trace;
    std::vector<std::string> csv;    // per rank
    std::vector<std::string> jsonl;  // per rank
  };
  std::vector<RunArtifacts> runs;
  for (std::uint32_t workers : {1u, 2u, 4u, 8u}) {
    opts.cfg.slave.workers = workers;
    ChaosClusterResult r = RunChaosCluster(opts);
    ASSERT_TRUE(r.exact) << "workers=" << workers
                         << " missing=" << r.missing.size()
                         << " extra=" << r.extra.size();
    RunArtifacts a;
    a.workers = workers;
    a.outputs = PairsDigest(r.outputs);
    a.trace = r.trace_json;
    for (Rank rank = 0; rank <= opts.cfg.num_slaves; ++rank) {
      a.csv.push_back(r.obs[rank]->recorder.ExportCsv());
      a.jsonl.push_back(r.obs[rank]->recorder.ExportJsonl());
    }
    runs.push_back(std::move(a));
  }

  const RunArtifacts& base = runs[0];
  ASSERT_FALSE(base.outputs.empty());
  ASSERT_FALSE(base.trace.empty());
  for (std::size_t i = 1; i < runs.size(); ++i) {
    const RunArtifacts& run = runs[i];
    EXPECT_EQ(run.outputs, base.outputs) << "workers=" << run.workers;
    EXPECT_EQ(run.trace, base.trace) << "workers=" << run.workers;
    for (std::size_t rank = 0; rank < base.csv.size(); ++rank) {
      EXPECT_EQ(StripWorkerCell(run.csv[rank]), StripWorkerCell(base.csv[rank]))
          << "workers=" << run.workers << " rank=" << rank;
      EXPECT_EQ(StripWorkerCell(run.jsonl[rank]),
                StripWorkerCell(base.jsonl[rank]))
          << "workers=" << run.workers << " rank=" << rank;
    }
  }
  // Between multi-worker runs nothing at all may differ.
  for (std::size_t i = 2; i < runs.size(); ++i) {
    EXPECT_EQ(runs[i].csv, runs[1].csv)
        << "workers=" << runs[i].workers << " vs " << runs[1].workers;
    EXPECT_EQ(runs[i].jsonl, runs[1].jsonl)
        << "workers=" << runs[i].workers << " vs " << runs[1].workers;
  }
}

// Determinism is not merely cross-k but per-k: two same-seed runs at
// workers=4 must agree byte-for-byte even though four threads raced over
// the groups (the merge order, not the execution order, defines the
// output).
TEST(WorkerChaosTest, SameSeedSameArtifactsAtFourWorkers) {
  ChaosClusterOptions opts = BaseOptions(78);
  opts.cfg.balance.th_sup = 2.0;
  opts.cfg.slave.workers = 4;
  opts.trace_events = true;
  opts.faults.delay_prob = 0.25;
  opts.faults.delay_min_us = 1 * kUsPerMs;
  opts.faults.delay_max_us = 5 * kUsPerMs;
  opts.faults.duplicate_prob = 0.3;
  ChaosClusterResult a = RunChaosCluster(opts);
  ChaosClusterResult b = RunChaosCluster(opts);
  ASSERT_TRUE(a.exact);
  EXPECT_EQ(PairsDigest(a.outputs), PairsDigest(b.outputs));
  EXPECT_EQ(a.trace_json, b.trace_json);
  for (Rank r = 0; r <= opts.cfg.num_slaves; ++r) {
    EXPECT_EQ(a.obs[r]->recorder.ExportCsv(), b.obs[r]->recorder.ExportCsv())
        << "rank " << r;
  }
  EXPECT_EQ(a.Summary(/*include_fault_lines=*/true),
            b.Summary(/*include_fault_lines=*/true));
}

/// Serializes every tuple_delay_us histogram of a rank's end-of-run
/// registry: labels, bucket bounds, bucket counts, total. Uses the registry
/// (deterministic at shutdown), not the cluster view -- the last in-flight
/// kMetrics frames race shutdown, so the view's tail is not comparable.
std::string DelayHistogramDigest(const obs::MetricsRegistry& reg) {
  std::ostringstream out;
  for (const obs::MetricSample& s :
       obs::CollectSamples(reg, /*include_volatile=*/false)) {
    if (s.name != "tuple_delay_us") continue;
    out << s.name << '{' << s.labels << "} total=" << s.hist_total << " [";
    for (double b : s.hist_bounds) out << b << ' ';
    out << "] (";
    for (std::uint64_t c : s.hist_counts) out << c << ' ';
    out << ")\n";
  }
  return out.str();
}

// The sampling decision is a pure function of (tuple, seed), and the delay
// is measured on the logical timeline -- so the per-group delay histograms
// must be byte-identical no matter how many worker threads raced over the
// groups. This is the worker-count-identity half of the telemetry
// acceptance criterion (the recorder-CSV half rides the matrix test above,
// whose rows now include the tuple_delay_us{...}.count cells).
TEST(WorkerChaosTest, TupleDelayHistogramsByteIdenticalAcrossWorkerCounts) {
  ChaosClusterOptions opts = BaseOptions(79);
  opts.cfg.balance.th_sup = 2.0;  // suppress wall-timing-dependent moves

  std::vector<std::string> digests;
  for (std::uint32_t workers : {1u, 4u}) {
    opts.cfg.slave.workers = workers;
    ChaosClusterResult r = RunChaosCluster(opts);
    ASSERT_TRUE(r.exact) << "workers=" << workers;
    std::string digest;
    for (Rank rank = 1; rank <= opts.cfg.num_slaves; ++rank) {
      digest += "rank" + std::to_string(rank) + ":\n";
      digest += DelayHistogramDigest(r.obs[rank]->registry);
    }
    digests.push_back(std::move(digest));
    // The histograms also ship into the master's cluster view (presence
    // only: the view's tail is arrival-order dependent).
    bool in_view = false;
    for (Rank rank = 1; rank <= opts.cfg.num_slaves && !in_view; ++rank) {
      for (std::int64_t epoch : r.obs[0]->cluster.Epochs(rank)) {
        const auto* samples = r.obs[0]->cluster.Get(rank, epoch);
        if (samples == nullptr) continue;
        for (const obs::MetricSample& s : *samples) {
          if (s.name == "tuple_delay_us" && s.hist_total > 0) {
            in_view = true;
            break;
          }
        }
        if (in_view) break;
      }
    }
    EXPECT_TRUE(in_view) << "workers=" << workers;
  }
  ASSERT_NE(digests[0].find("tuple_delay_us"), std::string::npos);
  EXPECT_EQ(digests[0], digests[1]);
}

// Wall mode flips every hot-path implementation at once -- the lock-free
// MPSC mailbox in the hub, the spin-barrier worker pool, and the
// completion-order lane->merge gather -- and none of it may show in any
// deterministic artifact: same seed, workers=4, wall_mode on vs off must be
// byte-identical (output set, trace, recorder exports).
TEST(WorkerChaosTest, WallModeIsByteIdenticalToDefaultAtFourWorkers) {
  ChaosClusterOptions opts = BaseOptions(81);
  opts.cfg.balance.th_sup = 2.0;  // suppress wall-timing-dependent moves
  opts.cfg.slave.workers = 4;
  opts.trace_events = true;

  struct RunArtifacts {
    std::string outputs;
    std::string trace;
    std::vector<std::string> csv;
  };
  std::vector<RunArtifacts> runs;
  for (bool wall : {false, true}) {
    opts.cfg.slave.wall_mode = wall;
    ChaosClusterResult r = RunChaosCluster(opts);
    ASSERT_TRUE(r.exact) << "wall_mode=" << wall;
    RunArtifacts a;
    a.outputs = PairsDigest(r.outputs);
    a.trace = r.trace_json;
    for (Rank rank = 0; rank <= opts.cfg.num_slaves; ++rank) {
      a.csv.push_back(r.obs[rank]->recorder.ExportCsv());
    }
    runs.push_back(std::move(a));
  }
  ASSERT_FALSE(runs[0].outputs.empty());
  EXPECT_EQ(runs[1].outputs, runs[0].outputs);
  EXPECT_EQ(runs[1].trace, runs[0].trace);
  for (std::size_t rank = 0; rank < runs[0].csv.size(); ++rank) {
    EXPECT_EQ(runs[1].csv[rank], runs[0].csv[rank]) << "rank=" << rank;
  }
}

// Crash + buddy failover + replay with a 4-worker pool: the quiesced-pool
// guarantee (RunOnAll is a barrier, so checkpoints and migrations always
// see settled window state) must keep recovery exact.
TEST(WorkerChaosTest, ReplicatedCrashWithFourWorkersRecoversExactOutput) {
  ChaosClusterOptions opts = BaseOptions(20);
  opts.cfg.slave.workers = 4;
  opts.cfg.replication.enabled = true;
  opts.cfg.replication.ckpt_interval_epochs = 2;
  opts.wall.recv_timeout_us = 30 * kUsPerMs;
  opts.wall.recv_max_retries = 2;
  opts.faults.crash_rank = 1;
  opts.faults.crash_after_batches = 6;
  ChaosClusterResult r = RunChaosCluster(opts);
  EXPECT_EQ(r.master.dead_slaves, 1u);
  EXPECT_GT(r.master.groups_failed_over, 0u);
  EXPECT_GT(r.master.replayed_batches, 0u);
  EXPECT_TRUE(r.exact) << "missing=" << r.missing.size()
                       << " extra=" << r.extra.size()
                       << " voided=" << r.voided;
}

}  // namespace
}  // namespace sjoin
