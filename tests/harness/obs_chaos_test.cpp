// Observability chaos tests: traced full-cluster runs under seeded fault
// schedules. Three claims are checked on top of the differential-output
// guarantees of chaos_test.cpp:
//
//   1. determinism -- two same-seed runs produce byte-identical merged
//      Chrome traces and per-epoch recorder CSVs (wall runners stamp the
//      logical epoch timeline, never wall time);
//   2. validity -- a crash + failover + replay run's trace parses, nests,
//      and satisfies the protocol invariants (ValidateChromeTrace);
//   3. consistency -- registry counters mirror the legacy summaries
//      one-for-one, and the master's kMetrics-fed cluster view agrees with
//      what each slave reported.
//
// Set SJOIN_TRACE_OUT=<path> to dump the crash scenario's trace (CI uploads
// it as an artifact and runs the trace_check CLI on it); SJOIN_EPOCH_CSV
// likewise dumps the master's per-epoch series.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <unistd.h>

#include "harness/chaos_harness.h"
#include "obs/trace_check.h"

namespace sjoin {
namespace {

/// Mirrors chaos_test.cpp BaseOptions: 3 slaves, short epochs, dense trace.
ChaosClusterOptions BaseOptions(std::uint64_t fault_seed) {
  ChaosClusterOptions opts;
  opts.cfg.num_slaves = 3;
  opts.cfg.join.num_partitions = 24;
  opts.cfg.join.window = 30 * kUsPerMs;
  opts.cfg.epoch.t_dist = 5 * kUsPerMs;
  opts.cfg.epoch.t_rep = 20 * kUsPerMs;
  opts.wall.run_for = 10 * kUsPerSec;
  opts.wall.recv_timeout_us = 250 * kUsPerMs;
  opts.wall.recv_max_retries = 3;
  opts.faults.seed = fault_seed;
  opts.trace = MakeChaosTrace(/*seed=*/97, /*count=*/1200,
                              /*span_us=*/150 * kUsPerMs,
                              /*key_domain=*/40);
  opts.trace_events = true;
  return opts;
}

void MaybeDump(const char* env, const std::string& content) {
  const char* path = std::getenv(env);
  if (path == nullptr || content.empty()) return;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << content;
}

// Two runs with the same fault seed must emit byte-identical traces and
// per-epoch CSVs. Migrations are suppressed (wall-timing dependent, as in
// ChaosTest.SameSeedSameSummary) and replication stays off: checkpoint-ack
// arrival epochs are wall-timing dependent by design.
TEST(ObsChaosTest, SameSeedByteIdenticalTraceAndEpochCsv) {
  ChaosClusterOptions opts = BaseOptions(40);
  opts.cfg.balance.th_sup = 2.0;  // occupancy <= 1: no suppliers, no moves
  opts.faults.delay_prob = 0.3;
  opts.faults.delay_min_us = 1 * kUsPerMs;
  opts.faults.delay_max_us = 6 * kUsPerMs;
  opts.faults.duplicate_prob = 0.5;
  opts.faults.drop_prob = 0.15;
  ChaosClusterResult a = RunChaosCluster(opts);
  ChaosClusterResult b = RunChaosCluster(opts);
  ASSERT_TRUE(a.exact);
  ASSERT_FALSE(a.trace_json.empty());
  EXPECT_EQ(a.trace_json, b.trace_json);
  for (Rank r = 0; r <= opts.cfg.num_slaves; ++r) {
    EXPECT_EQ(a.obs[r]->recorder.ExportCsv(), b.obs[r]->recorder.ExportCsv())
        << "rank " << r;
    EXPECT_EQ(a.obs[r]->recorder.ExportJsonl(), b.obs[r]->recorder.ExportJsonl())
        << "rank " << r;
  }
  // The trace is not merely identical but valid.
  obs::TraceCheckResult check = obs::ValidateChromeTrace(a.trace_json);
  EXPECT_TRUE(check.ok) << check.error;
  EXPECT_GT(check.spans, 0);
}

// A clean traced run: every epoch contributes its span pair plus a
// distribute span on the master and join_batch spans on slaves, and the
// per-epoch recorder rows line up with the epochs the master ran.
TEST(ObsChaosTest, TraceAndRecorderCoverEveryEpoch) {
  ChaosClusterOptions opts = BaseOptions(41);
  opts.cfg.balance.th_sup = 2.0;  // no migrations: every batch is per-epoch
  ChaosClusterResult r = RunChaosCluster(opts);
  ASSERT_TRUE(r.exact);
  obs::TraceCheckResult check = obs::ValidateChromeTrace(r.trace_json);
  ASSERT_TRUE(check.ok) << check.error;

  std::uint64_t master_epoch_spans = 0;
  std::uint64_t distribute_spans = 0;
  std::uint64_t join_batches = 0;
  for (const obs::TraceEvent& ev : r.obs[0]->trace.Events()) {
    if (ev.name == "epoch" && ev.ph == 'B') ++master_epoch_spans;
    if (ev.name == "distribute") ++distribute_spans;
  }
  for (Rank s = 1; s <= opts.cfg.num_slaves; ++s) {
    for (const obs::TraceEvent& ev : r.obs[s]->trace.Events()) {
      if (ev.name == "join_batch") ++join_batches;
    }
  }
  EXPECT_EQ(master_epoch_spans, r.master.epochs);
  EXPECT_EQ(distribute_spans, r.master.epochs);
  // Every distributed batch is drained exactly once by some slave.
  EXPECT_EQ(join_batches, r.master.epochs * opts.cfg.num_slaves);
  // One master recorder row per epoch, cumulative counters in the last row.
  ASSERT_EQ(r.obs[0]->recorder.Rows().size(), r.master.epochs);
  EXPECT_EQ(r.obs[0]->recorder.Back().cells.at("master_tuples_sent").i,
            static_cast<std::int64_t>(r.master.tuples_sent));
}

// The crash + failover + replay scenario (the ISSUE acceptance run): the
// merged trace must pass the full validator -- including the dead_slave ->
// failover -> replay ordering invariants -- and is dumped for CI when
// SJOIN_TRACE_OUT is set.
TEST(ObsChaosTest, ReplicatedCrashTraceSatisfiesProtocolInvariants) {
  ChaosClusterOptions opts = BaseOptions(42);
  opts.cfg.replication.enabled = true;
  opts.cfg.replication.ckpt_interval_epochs = 2;
  opts.wall.recv_timeout_us = 30 * kUsPerMs;
  opts.wall.recv_max_retries = 2;
  opts.faults.crash_rank = 1;
  opts.faults.crash_after_batches = 6;
  ChaosClusterResult r = RunChaosCluster(opts);
  ASSERT_EQ(r.master.dead_slaves, 1u);
  ASSERT_GT(r.master.groups_failed_over, 0u);
  ASSERT_GT(r.master.replayed_batches, 0u);
  EXPECT_TRUE(r.exact);

  obs::TraceCheckResult check = obs::ValidateChromeTrace(r.trace_json);
  EXPECT_TRUE(check.ok) << check.error;
  EXPECT_GT(check.instants, 0);

  // The recovery story is visible in the master's event stream.
  std::uint64_t dead = 0, failovers = 0, replays = 0, sweeps = 0, acks = 0;
  for (const obs::TraceEvent& ev : r.obs[0]->trace.Events()) {
    if (ev.name == "dead_slave") ++dead;
    if (ev.name == "failover") ++failovers;
    if (ev.name == "replay") ++replays;
    if (ev.name == "ckpt_sweep") ++sweeps;
    if (ev.name == "ckpt_ack") ++acks;
  }
  EXPECT_EQ(dead, 1u);
  EXPECT_EQ(failovers, r.master.groups_failed_over);
  EXPECT_EQ(replays, r.master.replayed_batches);
  EXPECT_EQ(sweeps, r.master.ckpt_sweeps);
  EXPECT_EQ(acks, r.master.ckpt_acks);
  // The adopting buddies recorded their side of the story.
  std::uint64_t adopts = 0;
  for (Rank s = 1; s <= opts.cfg.num_slaves; ++s) {
    for (const obs::TraceEvent& ev : r.obs[s]->trace.Events()) {
      if (ev.name == "group_adopt") ++adopts;
    }
  }
  std::uint64_t adopted = 0;
  for (const SlaveSummary& s : r.slaves) adopted += s.groups_adopted;
  EXPECT_EQ(adopts, adopted);

  MaybeDump("SJOIN_TRACE_OUT", r.trace_json);
  MaybeDump("SJOIN_EPOCH_CSV", r.obs[0]->recorder.ExportCsv());
}

// Registry counters must mirror the legacy summaries one-for-one: the
// MetricsRegistry is bumped alongside every summary field, so at run end
// the two views agree exactly (this is the cross-validation the recorder's
// final row inherits).
TEST(ObsChaosTest, RegistryCountersMatchLegacySummaries) {
  ChaosClusterOptions opts = BaseOptions(43);
  opts.cfg.replication.enabled = true;
  opts.cfg.replication.ckpt_interval_epochs = 2;
  opts.wall.recv_timeout_us = 30 * kUsPerMs;
  opts.wall.recv_max_retries = 2;
  opts.faults.crash_rank = 2;
  opts.faults.crash_after_batches = 6;
  ChaosClusterResult r = RunChaosCluster(opts);
  ASSERT_EQ(r.master.dead_slaves, 1u);

  const obs::MetricsRegistry& m = r.obs[0]->registry;
  EXPECT_EQ(m.CounterValue("master_tuples_sent"), r.master.tuples_sent);
  EXPECT_EQ(m.CounterValue("master_epochs"), r.master.epochs);
  EXPECT_EQ(m.CounterValue("master_migrations"), r.master.migrations);
  EXPECT_EQ(m.CounterValue("master_dead_slaves"), r.master.dead_slaves);
  EXPECT_EQ(m.CounterValue("master_groups_rehosted"), r.master.groups_rehosted);
  EXPECT_EQ(m.CounterValue("master_ckpt_sweeps"), r.master.ckpt_sweeps);
  EXPECT_EQ(m.CounterValue("master_ckpt_acks"), r.master.ckpt_acks);
  EXPECT_EQ(m.CounterValue("master_ckpt_bytes"), r.master.ckpt_bytes);
  EXPECT_EQ(m.CounterValue("master_groups_failed_over"),
            r.master.groups_failed_over);
  EXPECT_EQ(m.CounterValue("master_degraded_failovers"),
            r.master.degraded_failovers);
  EXPECT_EQ(m.CounterValue("master_replayed_batches"), r.master.replayed_batches);
  EXPECT_EQ(m.CounterValue("master_replayed_tuples"), r.master.replayed_tuples);

  for (Rank rank = 1; rank <= opts.cfg.num_slaves; ++rank) {
    if (rank == opts.faults.crash_rank) continue;  // died mid-run
    const obs::MetricsRegistry& s = r.obs[rank]->registry;
    const SlaveSummary& sum = r.slaves[rank - 1];
    EXPECT_EQ(s.CounterValue("slave_tuples_processed"), sum.tuples_processed)
        << "rank " << rank;
    EXPECT_EQ(s.CounterValue("slave_outputs"), sum.outputs) << "rank " << rank;
    EXPECT_EQ(s.CounterValue("slave_groups_moved_out"), sum.groups_moved_out)
        << "rank " << rank;
    EXPECT_EQ(s.CounterValue("slave_groups_moved_in"), sum.groups_moved_in)
        << "rank " << rank;
    EXPECT_EQ(s.CounterValue("slave_ckpt_segments_sent"),
              sum.ckpt_segments_sent)
        << "rank " << rank;
    EXPECT_EQ(s.CounterValue("slave_ckpt_bytes_sent"), sum.ckpt_bytes_sent)
        << "rank " << rank;
    EXPECT_EQ(s.CounterValue("slave_ckpt_segments_applied"),
              sum.ckpt_segments_applied)
        << "rank " << rank;
    EXPECT_EQ(s.CounterValue("slave_groups_adopted"), sum.groups_adopted)
        << "rank " << rank;
    EXPECT_EQ(s.CounterValue("slave_replayed_tuples"), sum.replayed_tuples)
        << "rank " << rank;
  }
}

// The master's cluster view is fed by fire-and-forget kMetrics frames keyed
// by the slave's own epoch stamp: every recorded frame must agree with the
// sending slave's recorder row for that epoch, and the view's export is
// well-formed.
TEST(ObsChaosTest, ClusterViewAgreesWithSlaveRecorders) {
  ChaosClusterOptions opts = BaseOptions(44);
  ChaosClusterResult r = RunChaosCluster(opts);
  ASSERT_TRUE(r.exact);
  const obs::ClusterMetricsView& view = r.obs[0]->cluster;
  ASSERT_GT(view.FrameCount(), 0u);

  std::size_t checked = 0;
  for (Rank rank = 1; rank <= opts.cfg.num_slaves; ++rank) {
    for (std::int64_t epoch : view.Epochs(rank)) {
      // Find the slave's own recorder row for the same epoch stamp.
      for (const obs::EpochRow& row : r.obs[rank]->recorder.Rows()) {
        if (row.epoch != epoch) continue;
        EXPECT_EQ(view.CounterAt(rank, epoch, "slave_tuples_processed"),
                  static_cast<std::uint64_t>(
                      row.cells.at("slave_tuples_processed").i))
            << "rank " << rank << " epoch " << epoch;
        EXPECT_EQ(view.CounterAt(rank, epoch, "slave_outputs"),
                  static_cast<std::uint64_t>(row.cells.at("slave_outputs").i))
            << "rank " << rank << " epoch " << epoch;
        ++checked;
      }
    }
  }
  EXPECT_GT(checked, 0u);

  std::string csv = view.ExportCsv();
  EXPECT_NE(csv.find("slave_outputs"), std::string::npos);
  // Every live slave shipped at least one frame; frames never claim more
  // than the slave's end-of-run totals (kMetrics is fire-and-forget, so the
  // very last in-flight frames may be missing -- never wrong).
  for (Rank rank = 1; rank <= opts.cfg.num_slaves; ++rank) {
    std::int64_t latest = view.LatestEpoch(rank);
    ASSERT_GE(latest, 0) << "rank " << rank;
    EXPECT_LE(view.CounterAt(rank, latest, "slave_tuples_processed"),
              r.slaves[rank - 1].tuples_processed)
        << "rank " << rank;
  }
}

// Tentpole acceptance, causal half: the per-rank trace files of a crash +
// failover + replay run stitch into one distributed trace that passes the
// full causal validation -- flow finishes never precede their starts,
// receive timestamps never precede their send_vt -- with cross-rank flow
// pairs actually matched across both hops. (Byte-identity is asserted on a
// faultless run below: a crash verdict's epoch placement is wall-timing
// dependent by design, see ChaosClusterResult::Summary.)
TEST(ObsChaosTest, StitchedCrashTraceIsCausallyValid) {
  ChaosClusterOptions opts = BaseOptions(45);
  opts.cfg.replication.enabled = true;
  opts.cfg.replication.ckpt_interval_epochs = 2;
  opts.wall.recv_timeout_us = 30 * kUsPerMs;
  opts.wall.recv_max_retries = 2;
  opts.faults.crash_rank = 1;
  opts.faults.crash_after_batches = 6;
  ChaosClusterResult a = RunChaosCluster(opts);
  ASSERT_TRUE(a.exact);
  ASSERT_EQ(a.rank_traces.size(),
            static_cast<std::size_t>(opts.cfg.num_slaves) + 2);

  obs::StitchResult sa = obs::StitchTraces(a.rank_traces);
  ASSERT_TRUE(sa.ok) << sa.error;
  EXPECT_TRUE(sa.check.ok) << sa.check.error;
  // Both causal hops are present and matched: master -> slave batch flows
  // and slave -> collector stats flows. (A crashed slave's last batches
  // legitimately leave unmatched starts; those must not fail validation.)
  EXPECT_GT(sa.check.flows, 0);
  EXPECT_NE(sa.json.find("batch_flow"), std::string::npos);
  EXPECT_NE(sa.json.find("stats_flow"), std::string::npos);

  // The stitch success report covers every rank and attributes the matched
  // flows to their start-event names.
  ASSERT_EQ(sa.ranks.size(), a.rank_traces.size());
  for (std::size_t r = 0; r < sa.ranks.size(); ++r) {
    EXPECT_EQ(sa.ranks[r], static_cast<std::uint32_t>(r));
  }
  std::int64_t report_flows = 0;
  bool saw_batch_flow = false;
  for (const obs::StitchKindCount& k : sa.kinds) {
    report_flows += k.flows;
    if (k.name == "batch_flow") saw_batch_flow = k.flows > 0;
  }
  EXPECT_EQ(report_flows, sa.check.flows);
  EXPECT_TRUE(saw_batch_flow);

  // SJOIN_RANK_TRACE_DIR=<dir>: dump the per-rank inputs as files, so CI
  // can re-stitch them with the standalone `trace_check --stitch` CLI as a
  // gating step (and upload them on failure).
  if (const char* dir = std::getenv("SJOIN_RANK_TRACE_DIR")) {
    for (std::size_t r = 0; r < a.rank_traces.size(); ++r) {
      std::ofstream out(std::string(dir) + "/trace_rank" + std::to_string(r) +
                            ".json",
                        std::ios::binary | std::ios::trunc);
      out << a.rank_traces[r];
    }
  }
}

// Tentpole acceptance, determinism half: without a wall-timing-dependent
// crash verdict, two same-seed runs stitch to byte-identical distributed
// traces (delay/duplicate faults included -- the fault layer is seeded and
// duplicate flow finishes collapse in validation, while every causal
// timestamp comes from the logical epoch timeline, never the wall).
TEST(ObsChaosTest, StitchedTraceIsByteIdenticalAcrossSameSeedRuns) {
  ChaosClusterOptions opts = BaseOptions(48);
  opts.faults.delay_prob = 0.25;
  opts.faults.delay_min_us = 1 * kUsPerMs;
  opts.faults.delay_max_us = 5 * kUsPerMs;
  opts.faults.duplicate_prob = 0.3;
  ChaosClusterResult a = RunChaosCluster(opts);
  ChaosClusterResult b = RunChaosCluster(opts);
  ASSERT_TRUE(a.exact);
  obs::StitchResult sa = obs::StitchTraces(a.rank_traces);
  obs::StitchResult sb = obs::StitchTraces(b.rank_traces);
  ASSERT_TRUE(sa.ok) << sa.error;
  ASSERT_TRUE(sb.ok) << sb.error;
  EXPECT_TRUE(sa.check.ok) << sa.check.error;
  EXPECT_GT(sa.check.flows, 0);
  EXPECT_EQ(sa.json, sb.json);
}

// End-to-end telemetry acceptance: sampled tuple-delay histograms ship
// inside kMetrics frames into the master's cluster view with their full
// bucket vectors, and the health gauges (watermark, per-slave epoch lag,
// group skew) land in the master's per-epoch recorder rows.
TEST(ObsChaosTest, TupleDelayAndHealthTelemetryReachClusterView) {
  ChaosClusterOptions opts = BaseOptions(46);
  ChaosClusterResult r = RunChaosCluster(opts);
  ASSERT_TRUE(r.exact);

  // Delay histograms in the cluster view: at least one (rank, epoch) frame
  // carries a tuple_delay_us sample with observations and bucket data.
  const obs::ClusterMetricsView& view = r.obs[0]->cluster;
  std::uint64_t sampled = 0;
  for (Rank rank = 1; rank <= opts.cfg.num_slaves; ++rank) {
    for (std::int64_t epoch : view.Epochs(rank)) {
      for (const obs::MetricSample& s : *view.Get(rank, epoch)) {
        if (s.name != "tuple_delay_us") continue;
        EXPECT_EQ(s.kind, obs::MetricKind::kHistogram);
        EXPECT_EQ(s.hist_counts.size(), s.hist_bounds.size() + 1);
        sampled += s.hist_total;
      }
    }
  }
  EXPECT_GT(sampled, 0u);
  // The view's CSV surfaces delay quantile columns for the histograms.
  const std::string csv = view.ExportCsv();
  EXPECT_NE(csv.find("tuple_delay_us"), std::string::npos);
  EXPECT_NE(csv.find(".p95"), std::string::npos);

  // Health gauges in the master's recorder: every epoch row carries the
  // watermark, the skew ratio, and one lag cell per slave.
  ASSERT_FALSE(r.obs[0]->recorder.Rows().empty());
  const obs::EpochRow& row = r.obs[0]->recorder.Back();
  EXPECT_EQ(row.cells.at("watermark_vt_us").d,
            static_cast<double>(row.vt));
  EXPECT_GE(row.cells.at("group_skew_ratio").d, 1.0);
  for (Rank s = 1; s <= opts.cfg.num_slaves; ++s) {
    EXPECT_GE(row.cells.at("epoch_lag{slave=" + std::to_string(s) + "}").d,
              0.0)
        << "slave " << s;
  }
  // Slave recorders carry their own watermark; sampled delay histograms
  // surface as .count cells.
  const obs::EpochRow& srow = r.obs[1]->recorder.Back();
  EXPECT_EQ(srow.cells.at("watermark_vt_us").d, static_cast<double>(srow.vt));
}

// Flight-recorder acceptance: a chaos run whose output diff fails (a crash
// without replication loses window state, so outputs go missing) must leave
// every rank's flight ring and the stitched trace in the artifact
// directory named by SJOIN_CHAOS_ARTIFACT_DIR.
TEST(ObsChaosTest, OutputDiffFailureDumpsFlightRingsAndStitchedTrace) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() /
                       ("sjoin_flight_" + std::to_string(::getpid()));
  fs::remove_all(dir);
  fs::create_directories(dir);
  ASSERT_EQ(::setenv("SJOIN_CHAOS_ARTIFACT_DIR", dir.c_str(), 1), 0);

  ChaosClusterOptions opts = BaseOptions(47);
  // No replication: the crashed slave's window state (and its share of the
  // reference output) is simply gone -- a guaranteed differential failure.
  opts.wall.recv_timeout_us = 30 * kUsPerMs;
  opts.wall.recv_max_retries = 2;
  opts.faults.crash_rank = 2;
  opts.faults.crash_after_batches = 6;
  ChaosClusterResult r = RunChaosCluster(opts);
  ::unsetenv("SJOIN_CHAOS_ARTIFACT_DIR");
  ASSERT_EQ(r.master.dead_slaves, 1u);
  ASSERT_FALSE(r.exact);
  ASSERT_FALSE(r.missing.empty());

  auto slurp = [](const fs::path& p) {
    std::ifstream in(p, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return std::move(ss).str();
  };
  // One flight dump per rank (0..n+1), the master's ring naming the
  // verdict, plus the eviction-time dump and the stitched trace.
  for (Rank rank = 0; rank < opts.cfg.num_slaves + 2; ++rank) {
    const fs::path p = dir / ("flight_rank" + std::to_string(rank) + ".txt");
    ASSERT_TRUE(fs::exists(p)) << p;
  }
  const std::string master_ring = slurp(dir / "flight_rank0.txt");
  EXPECT_NE(master_ring.find("dead_slave"), std::string::npos);
  EXPECT_NE(master_ring.find("slave=2"), std::string::npos);
  EXPECT_TRUE(fs::exists(dir / "flight_master_evict_slave2.txt"));
  const std::string stitched = slurp(dir / "stitched_trace.json");
  ASSERT_FALSE(stitched.empty());
  EXPECT_NE(stitched.find("batch_flow"), std::string::npos);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace sjoin
