#include "common/clock.h"

#include <gtest/gtest.h>

#include <thread>

namespace sjoin {
namespace {

TEST(VirtualClockTest, StartsAtGivenTime) {
  VirtualClock c(100);
  EXPECT_EQ(c.Now(), 100);
}

TEST(VirtualClockTest, AdvanceAccumulates) {
  VirtualClock c;
  c.Advance(5);
  c.Advance(7);
  EXPECT_EQ(c.Now(), 12);
}

TEST(VirtualClockTest, AdvanceToJumps) {
  VirtualClock c;
  c.AdvanceTo(1000);
  EXPECT_EQ(c.Now(), 1000);
  c.AdvanceTo(1000);  // same instant is allowed
  EXPECT_EQ(c.Now(), 1000);
}

TEST(WallClockTest, MonotoneAndAdvances) {
  WallClock c;
  Time a = c.Now();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  Time b = c.Now();
  EXPECT_GE(a, 0);
  EXPECT_GT(b, a);
}

TEST(TimeHelpersTest, Conversions) {
  EXPECT_EQ(SecondsToUs(2.0), 2 * kUsPerSec);
  EXPECT_EQ(SecondsToUs(0.5), kUsPerSec / 2);
  EXPECT_DOUBLE_EQ(UsToSeconds(1'500'000), 1.5);
}

}  // namespace
}  // namespace sjoin
