#include "common/rng.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace sjoin {
namespace {

TEST(SplitMix64Test, DeterministicSequence) {
  SplitMix64 a(123);
  SplitMix64 b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(SplitMix64Test, DifferentSeedsDiffer) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  EXPECT_NE(a.Next(), b.Next());
}

TEST(Mix64Test, IsAPermutationOnSamples) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 10000; ++i) seen.insert(Mix64(i));
  EXPECT_EQ(seen.size(), 10000u);
}

TEST(Pcg32Test, Deterministic) {
  Pcg32 a(42, 3);
  Pcg32 b(42, 3);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU32(), b.NextU32());
}

TEST(Pcg32Test, StreamsAreIndependent) {
  Pcg32 a(42, 1);
  Pcg32 b(42, 2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU32() == b.NextU32()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Pcg32Test, DoubleInUnitInterval) {
  Pcg32 rng(7);
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Pcg32Test, DoubleMeanNearHalf) {
  Pcg32 rng(7);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

class Pcg32BoundedTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(Pcg32BoundedTest, StaysInRangeAndHitsAllValues) {
  const std::uint32_t bound = GetParam();
  Pcg32 rng(99, bound);
  std::vector<int> hits(bound, 0);
  for (int i = 0; i < 5000; ++i) {
    std::uint32_t v = rng.NextBounded(bound);
    ASSERT_LT(v, bound);
    ++hits[v];
  }
  for (std::uint32_t v = 0; v < bound; ++v) {
    EXPECT_GT(hits[v], 0) << "value " << v << " never drawn";
  }
}

INSTANTIATE_TEST_SUITE_P(Bounds, Pcg32BoundedTest,
                         ::testing::Values(1u, 2u, 3u, 7u, 60u));

TEST(Pcg32Test, BoundedOneAlwaysZero) {
  Pcg32 rng(1);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.NextBounded(1), 0u);
}

}  // namespace
}  // namespace sjoin
