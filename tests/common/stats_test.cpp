#include "common/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace sjoin {
namespace {

TEST(RunningStatTest, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.Count(), 0u);
  EXPECT_DOUBLE_EQ(s.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.Variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.Sum(), 0.0);
}

TEST(RunningStatTest, MeanAndVariance) {
  RunningStat s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(v);
  EXPECT_EQ(s.Count(), 8u);
  EXPECT_DOUBLE_EQ(s.Mean(), 5.0);
  // Sample variance of the classic data set: 32/7.
  EXPECT_NEAR(s.Variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.Min(), 2.0);
  EXPECT_DOUBLE_EQ(s.Max(), 9.0);
  EXPECT_DOUBLE_EQ(s.Sum(), 40.0);
}

TEST(RunningStatTest, SingleObservationHasZeroVariance) {
  RunningStat s;
  s.Add(42.0);
  EXPECT_DOUBLE_EQ(s.Variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.StdDev(), 0.0);
}

TEST(RunningStatTest, WeightedAddMatchesRepeatedAdd) {
  RunningStat a;
  RunningStat b;
  a.AddWeighted(3.0, 5);
  a.AddWeighted(10.0, 2);
  for (int i = 0; i < 5; ++i) b.Add(3.0);
  for (int i = 0; i < 2; ++i) b.Add(10.0);
  EXPECT_EQ(a.Count(), b.Count());
  EXPECT_NEAR(a.Mean(), b.Mean(), 1e-12);
  EXPECT_NEAR(a.Variance(), b.Variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.Min(), b.Min());
  EXPECT_DOUBLE_EQ(a.Max(), b.Max());
}

TEST(RunningStatTest, WeightZeroIsNoOp) {
  RunningStat s;
  s.Add(1.0);
  s.AddWeighted(100.0, 0);
  EXPECT_EQ(s.Count(), 1u);
  EXPECT_DOUBLE_EQ(s.Max(), 1.0);
}

TEST(RunningStatTest, MergeMatchesSequential) {
  RunningStat a;
  RunningStat b;
  RunningStat all;
  for (int i = 0; i < 100; ++i) {
    double v = std::sin(static_cast<double>(i)) * 10.0;
    (i < 40 ? a : b).Add(v);
    all.Add(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.Count(), all.Count());
  EXPECT_NEAR(a.Mean(), all.Mean(), 1e-9);
  EXPECT_NEAR(a.Variance(), all.Variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.Min(), all.Min());
  EXPECT_DOUBLE_EQ(a.Max(), all.Max());
}

TEST(RunningStatTest, MergeWithEmptySides) {
  RunningStat a;
  RunningStat b;
  b.Add(5.0);
  a.Merge(b);  // empty <- nonempty
  EXPECT_EQ(a.Count(), 1u);
  EXPECT_DOUBLE_EQ(a.Mean(), 5.0);
  RunningStat empty;
  a.Merge(empty);  // nonempty <- empty
  EXPECT_EQ(a.Count(), 1u);
}

TEST(RunningStatTest, ResetClears) {
  RunningStat s;
  s.Add(1.0);
  s.Reset();
  EXPECT_EQ(s.Count(), 0u);
  EXPECT_DOUBLE_EQ(s.Mean(), 0.0);
}

TEST(HistogramTest, BucketsAndOverflow) {
  Histogram h({1.0, 10.0, 100.0});
  h.Add(0.5);
  h.Add(1.0);   // boundary lands in the bucket whose upper edge is >= x
  h.Add(5.0);
  h.Add(50.0);
  h.Add(1e6);   // overflow
  EXPECT_EQ(h.TotalCount(), 5u);
  EXPECT_EQ(h.CountAt(0), 2u);
  EXPECT_EQ(h.CountAt(1), 1u);
  EXPECT_EQ(h.CountAt(2), 1u);
  EXPECT_EQ(h.CountAt(3), 1u);
}

TEST(HistogramTest, QuantileInterpolates) {
  Histogram h({10.0, 20.0});
  for (int i = 0; i < 10; ++i) h.Add(5.0);
  double median = h.Quantile(0.5);
  EXPECT_GE(median, 0.0);
  EXPECT_LE(median, 10.0);
}

TEST(HistogramTest, EmptyQuantileIsZero) {
  Histogram h({1.0});
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 0.0);
}

TEST(HistogramTest, QuantileZeroSkipsEmptyLeadingBuckets) {
  // All mass sits in bucket (20, 30]; q=0 must answer from the first
  // *populated* bucket, not the empty leading ones.
  Histogram h({10.0, 20.0, 30.0});
  for (int i = 0; i < 4; ++i) h.Add(25.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.0), 20.0);
}

TEST(HistogramTest, QuantileOneIsUpperEdgeOfLastPopulatedBucket) {
  Histogram h({10.0, 20.0, 30.0});
  h.Add(5.0);
  h.Add(15.0);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 20.0);
}

TEST(HistogramTest, OverflowOnlyMassReturnsLastFiniteBound) {
  Histogram h({10.0});
  h.Add(100.0);  // lands in the unbounded overflow bucket
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 10.0);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 10.0);
}

TEST(HistogramTest, SingleBucketQuantilesInterpolateWithinBucket) {
  Histogram h({8.0});
  h.Add(1.0);
  h.Add(1.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 4.0);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 8.0);
}

TEST(HistogramTest, QuantileClampsOutOfRangeQ) {
  Histogram h({10.0});
  h.Add(5.0);
  EXPECT_DOUBLE_EQ(h.Quantile(-0.5), h.Quantile(0.0));
  EXPECT_DOUBLE_EQ(h.Quantile(2.0), h.Quantile(1.0));
}

TEST(TimeWeightedAverageTest, WeightsByDuration) {
  TimeWeightedAverage twa;
  twa.Add(0, 10, 1.0);
  twa.Add(10, 40, 5.0);
  // (1*10 + 5*30) / 40 = 4.0
  EXPECT_DOUBLE_EQ(twa.Average(), 4.0);
  EXPECT_EQ(twa.ObservedFor(), 40);
}

TEST(TimeWeightedAverageTest, EmptyIsZero) {
  TimeWeightedAverage twa;
  EXPECT_DOUBLE_EQ(twa.Average(), 0.0);
}

}  // namespace
}  // namespace sjoin
