#include "common/serialize.h"

#include <gtest/gtest.h>

#include <limits>

namespace sjoin {
namespace {

TEST(SerializeTest, RoundTripScalars) {
  Writer w;
  w.PutU8(0xAB);
  w.PutU16(0xBEEF);
  w.PutU32(0xDEADBEEF);
  w.PutU64(0x0123456789ABCDEFULL);
  w.PutI32(-42);
  w.PutI64(std::numeric_limits<std::int64_t>::min());
  w.PutDouble(3.141592653589793);

  Reader r(w.Bytes());
  EXPECT_EQ(r.GetU8(), 0xAB);
  EXPECT_EQ(r.GetU16(), 0xBEEF);
  EXPECT_EQ(r.GetU32(), 0xDEADBEEFu);
  EXPECT_EQ(r.GetU64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(r.GetI32(), -42);
  EXPECT_EQ(r.GetI64(), std::numeric_limits<std::int64_t>::min());
  EXPECT_DOUBLE_EQ(r.GetDouble(), 3.141592653589793);
  EXPECT_TRUE(r.AtEnd());
}

TEST(SerializeTest, WireFormatIsLittleEndian) {
  // The format must be identical on every host: fixed little-endian.
  Writer w;
  w.PutU32(0x01020304);
  auto bytes = w.Bytes();
  ASSERT_EQ(bytes.size(), 4u);
  EXPECT_EQ(bytes[0], 0x04);
  EXPECT_EQ(bytes[1], 0x03);
  EXPECT_EQ(bytes[2], 0x02);
  EXPECT_EQ(bytes[3], 0x01);
}

TEST(SerializeTest, RoundTripString) {
  Writer w;
  w.PutString("hello");
  w.PutString("");
  Reader r(w.Bytes());
  EXPECT_EQ(r.GetString(), "hello");
  EXPECT_EQ(r.GetString(), "");
  EXPECT_TRUE(r.AtEnd());
}

TEST(SerializeTest, RoundTripBytes) {
  std::vector<std::uint8_t> blob = {1, 2, 3, 255, 0, 128};
  Writer w;
  w.PutBytes(blob);
  Reader r(w.Bytes());
  EXPECT_EQ(r.GetBytes(blob.size()), blob);
}

TEST(SerializeTest, TruncatedReadThrows) {
  Writer w;
  w.PutU16(7);
  Reader r(w.Bytes());
  EXPECT_THROW(r.GetU32(), DecodeError);
}

TEST(SerializeTest, TruncatedStringThrows) {
  Writer w;
  w.PutU32(100);  // claims 100 bytes of string data, none present
  Reader r(w.Bytes());
  EXPECT_THROW(r.GetString(), DecodeError);
}

TEST(SerializeTest, RemainingTracksPosition) {
  Writer w;
  w.PutU64(1);
  w.PutU64(2);
  Reader r(w.Bytes());
  EXPECT_EQ(r.Remaining(), 16u);
  r.GetU64();
  EXPECT_EQ(r.Remaining(), 8u);
}

}  // namespace
}  // namespace sjoin
