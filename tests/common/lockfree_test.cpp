// Tests for the lock-free substrate (common/lockfree.h): ring/queue
// correctness single-threaded, then multi-producer stress asserting the
// properties the transports and the worker pool rely on -- per-producer
// FIFO, no loss, no duplication -- plus the blocking wrapper's timeout and
// close-drain semantics. The stress bodies are the CI TSan job's main diet.
#include "common/lockfree.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <thread>
#include <vector>

namespace sjoin {
namespace {

TEST(SpscRingTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpscRing<int>(1).Capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(2).Capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(3).Capacity(), 4u);
  EXPECT_EQ(SpscRing<int>(1000).Capacity(), 1024u);
}

TEST(SpscRingTest, FifoAndFullEmptySingleThread) {
  SpscRing<int> ring(4);
  EXPECT_TRUE(ring.Empty());
  int v = -1;
  EXPECT_FALSE(ring.TryPop(v));
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.TryPush(i));
  EXPECT_FALSE(ring.TryPush(99));  // full
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(ring.TryPop(v));
    EXPECT_EQ(v, i);
  }
  EXPECT_FALSE(ring.TryPop(v));
  EXPECT_TRUE(ring.Empty());
}

TEST(SpscRingTest, WrapsManyTimes) {
  SpscRing<std::uint64_t> ring(8);
  std::uint64_t v = 0;
  for (std::uint64_t i = 0; i < 10'000; ++i) {
    ASSERT_TRUE(ring.TryPush(i));
    ASSERT_TRUE(ring.TryPop(v));
    ASSERT_EQ(v, i);
  }
}

TEST(SpscRingTest, ThreadedOrderPreserved) {
  constexpr std::uint64_t kItems = 50'000;
  SpscRing<std::uint64_t> ring(64);
  std::thread producer([&] {
    for (std::uint64_t i = 0; i < kItems; ++i) ring.Push(i);
  });
  std::uint64_t expect = 0;
  SpinWait spin;
  while (expect < kItems) {
    std::uint64_t v = 0;
    if (ring.TryPop(v)) {
      ASSERT_EQ(v, expect);
      ++expect;
      spin.Reset();
    } else {
      spin.Pause();
    }
  }
  producer.join();
  EXPECT_TRUE(ring.Empty());
}

TEST(MpmcRingTest, FifoSingleThread) {
  MpmcRing<int> ring(4);
  int v = -1;
  EXPECT_FALSE(ring.TryPop(v));
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.TryPush(i));
  EXPECT_FALSE(ring.TryPush(99));  // full
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(ring.TryPop(v));
    EXPECT_EQ(v, i);
  }
  EXPECT_FALSE(ring.TryPop(v));
}

TEST(MpmcRingTest, StressNoLossNoDup) {
  // 4 producers push disjoint tagged values through a small ring while 2
  // consumers drain; every value must come out exactly once.
  constexpr std::uint32_t kProducers = 4;
  constexpr std::uint32_t kConsumers = 2;
  constexpr std::uint64_t kPerProducer = 10'000;
  MpmcRing<std::uint64_t> ring(32);
  std::atomic<std::uint64_t> popped{0};
  std::vector<std::atomic<std::uint32_t>> seen(kProducers * kPerProducer);

  std::vector<std::thread> threads;
  for (std::uint32_t p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      SpinWait spin;
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        const std::uint64_t tagged = p * kPerProducer + i;
        while (!ring.TryPush(tagged)) spin.Pause();
        spin.Reset();
      }
    });
  }
  for (std::uint32_t c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      SpinWait spin;
      while (popped.load(std::memory_order_relaxed) <
             kProducers * kPerProducer) {
        std::uint64_t v = 0;
        if (ring.TryPop(v)) {
          seen[v].fetch_add(1, std::memory_order_relaxed);
          popped.fetch_add(1, std::memory_order_relaxed);
          spin.Reset();
        } else {
          spin.Pause();
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (std::size_t i = 0; i < seen.size(); ++i) {
    ASSERT_EQ(seen[i].load(), 1u) << "value " << i;
  }
}

TEST(MpscQueueTest, FifoSingleThreadAndRecycling) {
  // Pool capacity 2 forces the recycle path and the allocate-on-empty path.
  MpscQueue<int> q(2);
  int v = -1;
  EXPECT_FALSE(q.TryPop(v));
  EXPECT_FALSE(q.InFlight());
  for (int round = 0; round < 100; ++round) {
    for (int i = 0; i < 8; ++i) q.Push(round * 8 + i);
    EXPECT_TRUE(q.InFlight());
    for (int i = 0; i < 8; ++i) {
      ASSERT_TRUE(q.TryPop(v));
      ASSERT_EQ(v, round * 8 + i);
    }
    EXPECT_FALSE(q.TryPop(v));
    EXPECT_FALSE(q.InFlight());
  }
}

struct Tagged {
  std::uint32_t producer = 0;
  std::uint64_t seq = 0;
};

TEST(MpscQueueTest, EightProducerStressPerProducerFifoNoLossNoDup) {
  constexpr std::uint32_t kProducers = 8;
  constexpr std::uint64_t kPerProducer = 5'000;
  MpscQueue<Tagged> q(64);

  std::vector<std::thread> producers;
  for (std::uint32_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        q.Push(Tagged{p, i});
      }
    });
  }

  // Consumer on this thread: every producer's sequence must arrive in
  // order with no gaps (FIFO per producer, no loss, no duplication).
  std::vector<std::uint64_t> next_seq(kProducers, 0);
  std::uint64_t total = 0;
  SpinWait spin;
  while (total < kProducers * kPerProducer) {
    Tagged t;
    if (q.TryPop(t)) {
      ASSERT_LT(t.producer, kProducers);
      ASSERT_EQ(t.seq, next_seq[t.producer])
          << "producer " << t.producer << " out of order";
      ++next_seq[t.producer];
      ++total;
      spin.Reset();
    } else {
      spin.Pause();
    }
  }
  for (std::thread& t : producers) t.join();
  Tagged t;
  EXPECT_FALSE(q.TryPop(t));
  EXPECT_FALSE(q.InFlight());
}

TEST(BlockingMpscQueueTest, ZeroTimeoutPollsWithoutWaiting) {
  BlockingMpscQueue<int> q;
  int v = -1;
  EXPECT_EQ(q.PopTimed(v, 0), PopStatus::kTimeout);
  q.Push(7);
  EXPECT_EQ(q.PopTimed(v, 0), PopStatus::kOk);
  EXPECT_EQ(v, 7);
  EXPECT_EQ(q.PopTimed(v, 0), PopStatus::kTimeout);
}

TEST(BlockingMpscQueueTest, PositiveTimeoutWaitsAtLeastThatLong) {
  BlockingMpscQueue<int> q;
  int v = -1;
  const auto start = std::chrono::steady_clock::now();
  EXPECT_EQ(q.PopTimed(v, 20'000), PopStatus::kTimeout);
  const auto elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
                           std::chrono::steady_clock::now() - start)
                           .count();
  EXPECT_GE(elapsed, 20'000);
}

TEST(BlockingMpscQueueTest, CloseDrainsBeforeReportingClosed) {
  BlockingMpscQueue<int> q;
  q.Push(1);
  q.Close();
  q.Push(2);  // late push: shutdown is a drain, not a guillotine
  int v = -1;
  EXPECT_EQ(q.PopTimed(v, 0), PopStatus::kOk);
  EXPECT_EQ(v, 1);
  EXPECT_EQ(q.Pop(v), PopStatus::kOk);
  EXPECT_EQ(v, 2);
  EXPECT_EQ(q.PopTimed(v, 0), PopStatus::kClosed);
  EXPECT_EQ(q.Pop(v), PopStatus::kClosed);
}

TEST(BlockingMpscQueueTest, BlockedPopWokenByPush) {
  BlockingMpscQueue<int> q;
  std::thread waker([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    q.Push(42);
  });
  int v = -1;
  EXPECT_EQ(q.Pop(v), PopStatus::kOk);
  EXPECT_EQ(v, 42);
  waker.join();
}

TEST(BlockingMpscQueueTest, BlockedPopWokenByClose) {
  BlockingMpscQueue<int> q;
  std::thread closer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    q.Close();
  });
  int v = -1;
  EXPECT_EQ(q.Pop(v), PopStatus::kClosed);
  closer.join();
}

TEST(SpinWaitTest, LeavesPureSpinPhaseAfterBudget) {
  SpinWait spin;
  EXPECT_FALSE(spin.Yielding());
  for (int i = 0; i < 128; ++i) spin.Pause();
  EXPECT_FALSE(spin.Yielding());
  spin.Pause();
  EXPECT_TRUE(spin.Yielding());
  spin.Reset();
  EXPECT_FALSE(spin.Yielding());
}

TEST(PinCpusTest, ResolvesEnvListOffAndDefault) {
  ::setenv("SJOIN_PIN_CPUS", "off", 1);
  EXPECT_TRUE(ResolvePinCpus().empty());
  EXPECT_FALSE(PinWorkerCpu(0));  // disabled: no-op, reports false

  ::setenv("SJOIN_PIN_CPUS", "0", 1);
  EXPECT_TRUE(ResolvePinCpus().empty());

  ::setenv("SJOIN_PIN_CPUS", "2,5,7", 1);
  const std::vector<std::uint32_t> cpus = ResolvePinCpus();
  ASSERT_EQ(cpus.size(), 3u);
  EXPECT_EQ(cpus[0], 2u);
  EXPECT_EQ(cpus[1], 5u);
  EXPECT_EQ(cpus[2], 7u);

  ::unsetenv("SJOIN_PIN_CPUS");
  EXPECT_EQ(ResolvePinCpus().size(), std::thread::hardware_concurrency());
  // Pinning to CPU 0 exists on every host; worker index wraps the list.
  EXPECT_TRUE(PinThreadToCpu(0));
}

}  // namespace
}  // namespace sjoin
