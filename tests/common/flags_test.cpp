#include "common/flags.h"

#include <gtest/gtest.h>

namespace sjoin {
namespace {

FlagSet Parse(std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  FlagSet fs;
  EXPECT_TRUE(fs.Parse(static_cast<int>(args.size()), args.data()));
  return fs;
}

TEST(FlagsTest, EqualsSyntax) {
  FlagSet fs = Parse({"--rate=3000", "--name=hello"});
  EXPECT_DOUBLE_EQ(fs.GetDouble("rate", 0), 3000.0);
  EXPECT_EQ(fs.GetString("name", ""), "hello");
}

TEST(FlagsTest, SpaceSyntax) {
  FlagSet fs = Parse({"--slaves", "5"});
  EXPECT_EQ(fs.GetInt("slaves", 0), 5);
}

TEST(FlagsTest, BareBooleanFlag) {
  FlagSet fs = Parse({"--adaptive"});
  EXPECT_TRUE(fs.GetBool("adaptive", false));
  EXPECT_FALSE(fs.GetBool("missing", false));
}

TEST(FlagsTest, BooleanValues) {
  FlagSet fs = Parse({"--a=true", "--b=0", "--c=off", "--d=yes"});
  EXPECT_TRUE(fs.GetBool("a", false));
  EXPECT_FALSE(fs.GetBool("b", true));
  EXPECT_FALSE(fs.GetBool("c", true));
  EXPECT_TRUE(fs.GetBool("d", false));
}

TEST(FlagsTest, DefaultsWhenAbsent) {
  FlagSet fs = Parse({});
  EXPECT_DOUBLE_EQ(fs.GetDouble("rate", 1500.0), 1500.0);
  EXPECT_EQ(fs.GetInt("n", 7), 7);
  EXPECT_EQ(fs.GetString("s", "dflt"), "dflt");
}

TEST(FlagsTest, MalformedNumberSetsError) {
  FlagSet fs = Parse({"--rate=abc"});
  EXPECT_DOUBLE_EQ(fs.GetDouble("rate", 1.0), 1.0);
  EXPECT_FALSE(fs.Error().empty());
}

TEST(FlagsTest, PositionalArguments) {
  FlagSet fs = Parse({"input.trace", "--rate=1", "output.txt"});
  ASSERT_EQ(fs.Positional().size(), 2u);
  EXPECT_EQ(fs.Positional()[0], "input.trace");
  EXPECT_EQ(fs.Positional()[1], "output.txt");
}

TEST(FlagsTest, UnusedFlagDetection) {
  FlagSet fs = Parse({"--rate=1", "--typo=2"});
  (void)fs.GetDouble("rate", 0);
  auto unused = fs.UnusedFlags();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "typo");
}

TEST(FlagsTest, NegativeNumbers) {
  FlagSet fs = Parse({"--offset=-42"});
  EXPECT_EQ(fs.GetInt("offset", 0), -42);
}

}  // namespace
}  // namespace sjoin
