#include "common/log.h"

#include <gtest/gtest.h>

#include <string>

namespace sjoin {
namespace {

// The global level and thread-local context persist across tests in this
// binary; restore defaults so test order never matters.
class LogTest : public ::testing::Test {
 protected:
  void TearDown() override {
    SetLogLevel(LogLevel::kOff);
    ClearLogContext();
  }
};

TEST_F(LogTest, ParseLogLevelIsCaseInsensitive) {
  EXPECT_EQ(ParseLogLevel("debug"), LogLevel::kDebug);
  EXPECT_EQ(ParseLogLevel("DEBUG"), LogLevel::kDebug);
  EXPECT_EQ(ParseLogLevel("Info"), LogLevel::kInfo);
  EXPECT_EQ(ParseLogLevel("INFO"), LogLevel::kInfo);
  EXPECT_EQ(ParseLogLevel("wArN"), LogLevel::kWarn);
  EXPECT_EQ(ParseLogLevel("Error"), LogLevel::kError);
}

TEST_F(LogTest, ParseLogLevelUnknownStaysOff) {
  EXPECT_EQ(ParseLogLevel(""), LogLevel::kOff);
  EXPECT_EQ(ParseLogLevel("verbose"), LogLevel::kOff);
  EXPECT_EQ(ParseLogLevel("off"), LogLevel::kOff);
  EXPECT_EQ(ParseLogLevel("debug "), LogLevel::kOff);  // no trimming: exact names only
}

TEST_F(LogTest, MessagesBelowThresholdAreDiscarded) {
  SetLogLevel(LogLevel::kWarn);
  ::testing::internal::CaptureStderr();
  SJOIN_INFO("hidden");
  SJOIN_WARN("visible");
  std::string out = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(out.find("hidden"), std::string::npos);
  EXPECT_NE(out.find("visible"), std::string::npos);
}

TEST_F(LogTest, PrefixCarriesVtAndRank) {
  SetLogLevel(LogLevel::kInfo);
  SetLogVt(12'400'000);  // 12.4 virtual seconds
  SetLogRank(3);
  ::testing::internal::CaptureStderr();
  SJOIN_INFO("slave: hello");
  std::string out = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(out, "[sjoin INFO vt=12.400s r3] slave: hello\n");
}

TEST_F(LogTest, NegativeContextFieldsAreOmitted) {
  SetLogLevel(LogLevel::kInfo);
  ClearLogContext();
  ::testing::internal::CaptureStderr();
  SJOIN_INFO("bare");
  std::string out = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(out, "[sjoin INFO] bare\n");
}

}  // namespace
}  // namespace sjoin
