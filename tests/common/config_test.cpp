#include "common/config.h"

#include <gtest/gtest.h>

namespace sjoin {
namespace {

// Table I of the paper: the defaults must reproduce it exactly.
TEST(ConfigTest, DefaultsMatchPaperTableI) {
  SystemConfig cfg;
  EXPECT_EQ(cfg.join.window, 10 * kUsPerMin);          // W = 10 min
  EXPECT_EQ(cfg.workload.lambda, 1500.0);              // lambda = 1500 t/s
  EXPECT_EQ(cfg.workload.b_skew, 0.7);                 // b = 0.7
  EXPECT_EQ(cfg.balance.th_con, 0.01);                 // Th_con
  EXPECT_EQ(cfg.balance.th_sup, 0.5);                  // Th_sup
  EXPECT_EQ(cfg.join.theta_bytes, std::size_t{3} * 512 * 1024);  // 1.5 MB
  EXPECT_EQ(cfg.join.block_bytes, std::size_t{4096});  // 4 KB
  EXPECT_EQ(cfg.epoch.t_dist, 2 * kUsPerSec);          // t_d = 2 s
  EXPECT_EQ(cfg.epoch.t_rep, 20 * kUsPerSec);          // t_r = 20 s
  EXPECT_EQ(cfg.join.num_partitions, 60u);             // 60 partitions
  EXPECT_EQ(cfg.workload.tuple_bytes, std::size_t{64});  // 64-byte tuples
  EXPECT_EQ(cfg.workload.key_domain, 10'000'000u);     // A in [0, 10^7]
  EXPECT_EQ(cfg.balance.slave_buffer_bytes, std::size_t{1024} * 1024);  // 1 MB
}

TEST(ConfigTest, BlockCapacityFromSizes) {
  SystemConfig cfg;
  EXPECT_EQ(cfg.BlockCapacity(), 64u);  // 4 KB / 64 B
}

TEST(ConfigTest, ActiveSlavesDefaultsToAll) {
  SystemConfig cfg;
  cfg.num_slaves = 5;
  EXPECT_EQ(cfg.ActiveSlavesAtStart(), 5u);
  cfg.initial_active_slaves = 2;
  EXPECT_EQ(cfg.ActiveSlavesAtStart(), 2u);
}

TEST(ConfigTest, SummaryMentionsKeyParameters) {
  SystemConfig cfg;
  std::string s = Summarize(cfg);
  EXPECT_NE(s.find("slaves=4"), std::string::npos);
  EXPECT_NE(s.find("W=600"), std::string::npos);
  EXPECT_NE(s.find("npart=60"), std::string::npos);
  EXPECT_NE(s.find("tuning=on"), std::string::npos);
}

}  // namespace
}  // namespace sjoin
