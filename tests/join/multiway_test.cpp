#include "join/multiway.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"

namespace sjoin {
namespace {

using Canon = std::vector<std::pair<std::uint64_t, std::vector<Time>>>;

Canon Canonical(const std::vector<MultiJoinOutput>& outs) {
  Canon c;
  for (const MultiJoinOutput& o : outs) c.emplace_back(o.key, o.component_ts);
  std::sort(c.begin(), c.end());
  return c;
}

std::vector<Rec> RandomTrace(std::uint64_t seed, std::size_t count,
                             std::uint32_t streams, std::uint32_t keys,
                             std::uint32_t max_gap_us) {
  Pcg32 rng(seed, 3);
  std::vector<Rec> recs;
  Time ts = 0;
  for (std::size_t i = 0; i < count; ++i) {
    ts += 1 + rng.NextBounded(max_gap_us);
    recs.push_back(Rec{ts, rng.NextBounded(keys),
                       static_cast<StreamId>(rng.NextBounded(streams))});
  }
  return recs;
}

TEST(MultiwayTest, ThreeWayBasicComposite) {
  MultiCollectSink sink;
  MultiwayJoinModule join({100, 100, 100}, 4, &sink);
  join.Process(Rec{10, 7, 0}, 1000);
  join.Process(Rec{20, 7, 1}, 1001);
  EXPECT_EQ(sink.Outputs().size(), 0u);  // no stream-2 component yet
  join.Process(Rec{30, 7, 2}, 1002);
  ASSERT_EQ(sink.Outputs().size(), 1u);
  const MultiJoinOutput& o = sink.Outputs()[0];
  EXPECT_EQ(o.key, 7u);
  EXPECT_EQ(o.component_ts, (std::vector<Time>{10, 20, 30}));
  EXPECT_EQ(o.newest, 2);
  EXPECT_EQ(o.produced_at, 1002);
}

TEST(MultiwayTest, PerStreamWindowsApplyIndividually) {
  MultiCollectSink sink;
  // Stream 0 has a tight window, stream 1 a loose one.
  MultiwayJoinModule join({10, 1000, 1000}, 4, &sink);
  join.Process(Rec{0, 1, 0}, 0);
  join.Process(Rec{5, 1, 1}, 0);
  join.Process(Rec{100, 1, 2}, 0);  // newest; s0 component (ts=0) is > W0 old
  EXPECT_TRUE(sink.Outputs().empty());
  // A fresh stream-0 tuple inside every window completes the composite.
  join.Process(Rec{101, 1, 0}, 0);
  EXPECT_EQ(sink.Outputs().size(), 1u);
}

TEST(MultiwayTest, TwoWayDegeneratesToPairJoin) {
  MultiCollectSink sink;
  MultiwayJoinModule join({50, 50}, 4, &sink);
  join.Process(Rec{10, 3, 0}, 0);
  join.Process(Rec{40, 3, 1}, 0);
  join.Process(Rec{80, 3, 0}, 0);
  // Pairs: (10,40) and (80,40); (10 vs 80) same stream; all within 50.
  EXPECT_EQ(sink.Outputs().size(), 2u);
}

TEST(MultiwayTest, CrossProductEnumeratesAllCombinations) {
  MultiCollectSink sink;
  MultiwayJoinModule join({1000, 1000, 1000}, 8, &sink);
  for (Time t = 1; t <= 3; ++t) join.Process(Rec{t, 9, 0}, 0);
  for (Time t = 11; t <= 12; ++t) join.Process(Rec{t, 9, 1}, 0);
  join.Process(Rec{20, 9, 2}, 0);  // 3 x 2 combinations complete here
  EXPECT_EQ(sink.Outputs().size(), 6u);
}

class MultiwayEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, int>> {};

TEST_P(MultiwayEquivalenceTest, MatchesDeclarativeReference) {
  const auto [seed, nstreams] = GetParam();
  auto recs = RandomTrace(seed, 400, static_cast<std::uint32_t>(nstreams),
                          /*keys=*/4, /*max_gap_us=*/300);
  std::vector<Duration> windows;
  for (int k = 0; k < nstreams; ++k) {
    windows.push_back(2000 + 700 * k);  // heterogeneous windows
  }

  MultiCollectSink sink;
  MultiwayJoinModule join(windows, 4, &sink);
  for (const Rec& r : recs) join.Process(r, r.ts);

  auto expect = ReferenceMultiwayJoin(recs, windows);
  EXPECT_EQ(Canonical(sink.Outputs()), Canonical(expect));
  EXPECT_EQ(join.Composites(), sink.Outputs().size());
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MultiwayEquivalenceTest,
    ::testing::Values(std::make_tuple(std::uint64_t{1}, 2),
                      std::make_tuple(std::uint64_t{2}, 3),
                      std::make_tuple(std::uint64_t{3}, 3),
                      std::make_tuple(std::uint64_t{4}, 4),
                      std::make_tuple(std::uint64_t{5}, 5)));

TEST(MultiwayTest, ComparisonsChargeScansOfAllOtherStreams) {
  MultiStatsSink sink;
  MultiwayJoinModule join({10'000, 10'000, 10'000}, 4, &sink);
  for (Time t = 1; t <= 30; ++t) {
    join.Process(Rec{t, 1, static_cast<StreamId>(t % 3)}, t);
  }
  // Each probe scans the sealed counts of two other streams: ~n^2/3 total.
  EXPECT_GT(join.Comparisons(), 200u);
}

TEST(MultiwayTest, ExpiryBoundsWindowState) {
  MultiStatsSink sink;
  MultiwayJoinModule join({100, 100}, 2, &sink);
  for (Time t = 1; t <= 5000; t += 5) {
    join.Process(Rec{t, 1, static_cast<StreamId>((t / 5) % 2)}, t);
  }
  // Window holds ~20 tuples/stream; block granularity adds slack.
  EXPECT_LT(join.WindowTuples(), 120u);
}

TEST(MultiwayTest, DelayStatsTrackProducedAt) {
  MultiStatsSink sink;
  MultiwayJoinModule join({100, 100}, 4, &sink);
  join.Process(Rec{10, 2, 0}, 10);
  join.Process(Rec{20, 2, 1}, 50);  // produced 30us after newest arrival
  ASSERT_EQ(sink.Count(), 1u);
  EXPECT_DOUBLE_EQ(sink.DelayUs().Mean(), 30.0);
}

}  // namespace
}  // namespace sjoin
