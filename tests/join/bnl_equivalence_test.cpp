// The load-bearing correctness argument of the execution-driven simulation:
//
//   1. BnlPartitionJoin -- a literal, index-free implementation of the
//      paper's block-nested-loop algorithm -- produces exactly the
//      declarative sliding-window join answer (ReferenceSlidingJoin);
//   2. JoinModule -- the production pipeline with the per-key probe index
//      and the analytic comparison charge -- produces the same outputs AND
//      reports exactly the comparison count the real BNL scan performs.
//
// Together these show that accelerating match discovery does not change
// results, and that the virtual-clock CPU charge equals the work the
// paper's algorithm would really do.
#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>
#include <vector>

#include "common/rng.h"
#include "join/join_module.h"
#include "join/reference_join.h"

namespace sjoin {
namespace {

struct Workload {
  std::uint64_t seed;
  std::size_t tuples;
  std::uint64_t keys;        // distinct key count (small => many matches)
  Duration window;
  std::size_t block_capacity;
};

std::vector<Rec> MakeWorkload(const Workload& w) {
  Pcg32 rng(w.seed, 8);
  std::vector<Rec> recs;
  Time ts = 0;
  for (std::size_t i = 0; i < w.tuples; ++i) {
    ts += 1 + rng.NextBounded(2000);
    recs.push_back(Rec{ts,
                       rng.NextBounded(static_cast<std::uint32_t>(w.keys)),
                       static_cast<StreamId>(rng.NextBounded(2))});
  }
  return recs;
}

class EquivalenceTest : public ::testing::TestWithParam<Workload> {};

TEST_P(EquivalenceTest, BnlMatchesDeclarativeReference) {
  const Workload w = GetParam();
  auto recs = MakeWorkload(w);
  auto expect = ReferenceSlidingJoin(recs, w.window);
  auto bnl = BnlPartitionJoin(recs, w.window, w.block_capacity);
  EXPECT_EQ(bnl.pairs, expect);
}

TEST_P(EquivalenceTest, JoinModuleMatchesBnlOutputsAndComparisons) {
  const Workload w = GetParam();
  auto recs = MakeWorkload(w);

  // Configure the module as ONE mini-partition-group (single partition,
  // tuning off) so its batching exactly mirrors BnlPartitionJoin.
  SystemConfig cfg;
  cfg.workload.tuple_bytes = 64;
  cfg.join.num_partitions = 1;
  cfg.join.fine_tuning = false;
  cfg.join.block_bytes = w.block_capacity * cfg.workload.tuple_bytes;
  cfg.join.window = w.window;

  CollectSink sink;
  JoinModule jm(cfg, &sink);
  jm.EnqueueBatch(recs);
  jm.ProcessFor(0, 1'000'000 * kUsPerSec);
  ASSERT_EQ(jm.BufferedTuples(), 0u);

  std::vector<JoinPair> got;
  for (const JoinOutput& o : sink.Outputs()) {
    got.push_back(JoinPair{o.left.ts, o.right.ts, o.left.key});
  }
  std::sort(got.begin(), got.end());

  auto bnl = BnlPartitionJoin(recs, w.window, w.block_capacity);
  EXPECT_EQ(got, bnl.pairs);
  EXPECT_EQ(jm.Comparisons(), bnl.comparisons)
      << "analytic comparison charge must equal the real BNL scan count";
}

TEST_P(EquivalenceTest, PartitionedAndTunedModuleStillMatchesReference) {
  const Workload w = GetParam();
  auto recs = MakeWorkload(w);
  auto expect = ReferenceSlidingJoin(recs, w.window);

  SystemConfig cfg;
  cfg.workload.tuple_bytes = 64;
  cfg.join.num_partitions = 6;
  cfg.join.fine_tuning = true;
  cfg.join.theta_bytes = 16 * cfg.workload.tuple_bytes;  // aggressive tuning
  cfg.join.block_bytes = w.block_capacity * cfg.workload.tuple_bytes;
  cfg.join.window = w.window;

  CollectSink sink;
  JoinModule jm(cfg, &sink);
  jm.EnqueueBatch(recs);
  jm.ProcessFor(0, 1'000'000 * kUsPerSec);

  std::vector<JoinPair> got;
  for (const JoinOutput& o : sink.Outputs()) {
    got.push_back(JoinPair{o.left.ts, o.right.ts, o.left.key});
  }
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, expect)
      << "partitioning + extendible-hash tuning must not change the answer";
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, EquivalenceTest,
    ::testing::Values(
        // seed, tuples, keys, window, block capacity
        Workload{1, 200, 5, 50 * kUsPerMs, 4},
        Workload{2, 500, 3, 200 * kUsPerMs, 8},
        Workload{3, 500, 50, 500 * kUsPerMs, 4},
        Workload{4, 1000, 10, 100 * kUsPerMs, 16},
        Workload{5, 1000, 1, 50 * kUsPerMs, 4},     // single hot key
        Workload{6, 300, 7, 1 * kUsPerMs, 4},       // tiny window, heavy expiry
        Workload{7, 800, 20, 2000 * kUsPerMs, 2},   // tiny blocks
        Workload{8, 64, 2, 100 * kUsPerMs, 64},     // single-block windows
        Workload{9, 1500, 100, 300 * kUsPerMs, 8}));

// Directly exercises the expiring-block vs. fresh-head completeness join
// (paper section IV-D): a match that is ONLY discoverable at expiry time.
TEST(ExpiryJoinTest, ExpiringBlockJoinsOppositeFreshTuples) {
  const Duration window = 100;
  // Stream 0: two tuples fill a 2-capacity block (sealed after flush).
  // Stream 1: one fresh tuple arrives within window of the first block,
  // then stream 0 traffic pushes the block out of the window while the
  // stream-1 tuple is still fresh.
  std::vector<Rec> recs = {
      {10, 7, 0}, {20, 7, 0},   // block A fills and seals
      {90, 7, 1},               // fresh in stream 1's head (capacity 2)
      {500, 3, 0}, {510, 3, 0}, // push time forward; expire block A
  };
  auto expect = ReferenceSlidingJoin(recs, window);
  // (10,90) and (20,90) are within the window: the reference has them.
  ASSERT_EQ(expect.size(), 2u);

  auto bnl = BnlPartitionJoin(recs, window, /*block_capacity=*/2);
  EXPECT_EQ(bnl.pairs, expect);

  SystemConfig cfg;
  cfg.workload.tuple_bytes = 64;
  cfg.join.num_partitions = 1;
  cfg.join.fine_tuning = false;
  cfg.join.block_bytes = 2 * cfg.workload.tuple_bytes;
  cfg.join.window = window;
  CollectSink sink;
  JoinModule jm(cfg, &sink);
  // Feed one tuple at a time WITHOUT draining between them is impossible
  // through the public API (a drained buffer flushes partial heads), so
  // enqueue everything at once: the stream-1 tuple stays fresh until the
  // final drain, and block A expires during the later stream-0 flush.
  jm.EnqueueBatch(recs);
  jm.ProcessFor(0, 1000 * kUsPerSec);
  std::vector<JoinPair> got;
  for (const JoinOutput& o : sink.Outputs()) {
    got.push_back(JoinPair{o.left.ts, o.right.ts, o.left.key});
  }
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, expect);
}

}  // namespace
}  // namespace sjoin
