// Property test: the join answer is invariant under ANY schedule of
// partition-group migrations. A pool of JoinModules processes a shared
// stream (each tuple routed to its partition's current owner); between
// random batches, random partitions migrate between random modules through
// the real extract -> encode -> decode -> install path, with pending tuples
// re-enqueued at the new owner. The union of all outputs must equal the
// declarative sliding-window join, exactly, for every seed.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "join/join_module.h"
#include "join/reference_join.h"
#include "testutil/fuzz_env.h"
#include "window/state_codec.h"

namespace sjoin {
namespace {

class MigrationFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MigrationFuzzTest, OutputsInvariantUnderRandomMigrations) {
  const std::uint64_t seed = GetParam();
  Pcg32 rng(seed, 12);

  SystemConfig cfg;
  cfg.workload.tuple_bytes = 64;
  cfg.join.num_partitions = 6;
  cfg.join.block_bytes = 4 * 64;        // 4 records per block
  cfg.join.theta_bytes = 24 * 64;       // aggressive tuning during the run
  cfg.join.window = 400 * kUsPerMs;

  constexpr std::size_t kModules = 3;
  std::vector<std::unique_ptr<CollectSink>> sinks;
  std::vector<std::unique_ptr<JoinModule>> modules;
  for (std::size_t i = 0; i < kModules; ++i) {
    sinks.push_back(std::make_unique<CollectSink>());
    modules.push_back(std::make_unique<JoinModule>(cfg, sinks.back().get()));
  }
  std::vector<std::size_t> owner(cfg.join.num_partitions, 0);
  for (std::size_t p = 0; p < owner.size(); ++p) owner[p] = p % kModules;

  // Generate the whole input up front (globally ordered).
  std::vector<Rec> all;
  Time ts = 0;
  for (int i = 0; i < 1200; ++i) {
    ts += 1 + rng.NextBounded(1000);
    all.push_back(Rec{ts, rng.NextBounded(12),
                      static_cast<StreamId>(rng.NextBounded(2))});
  }

  Time work_clock = 0;
  std::size_t fed = 0;
  while (fed < all.size()) {
    // Feed a random batch to the current owners, in order.
    std::size_t batch = 1 + rng.NextBounded(60);
    for (; batch > 0 && fed < all.size(); --batch, ++fed) {
      const Rec& rec = all[fed];
      const PartitionId pid = PartitionOf(rec.key, cfg.join.num_partitions);
      modules[owner[pid]]->EnqueueBatch(std::span<const Rec>(&rec, 1));
    }
    // Everyone processes to completion (budget far beyond any backlog).
    work_clock += kUsPerSec;
    for (auto& m : modules) {
      m->ProcessFor(work_clock, 3600 * kUsPerSec);
    }

    // Random migration: move a random partition to a random other module
    // through the full wire path.
    const PartitionId pid =
        rng.NextBounded(cfg.join.num_partitions);
    const std::size_t from = owner[pid];
    const std::size_t to = rng.NextBounded(kModules);
    if (to == from) continue;
    if (modules[from]->Store().Find(pid) == nullptr) continue;

    Duration cost = 0;
    std::vector<Rec> pending;
    auto group = modules[from]->ExtractGroup(pid, work_clock, cost, pending);
    Writer w;
    EncodeGroupState(w, *group);
    Reader r(w.Bytes());
    modules[to]->InstallGroup(
        pid, DecodeGroupState(r, cfg.join, cfg.workload.tuple_bytes));
    modules[to]->EnqueueBatch(pending);
    owner[pid] = to;
  }
  work_clock += kUsPerSec;
  for (auto& m : modules) m->ProcessFor(work_clock, 3600 * kUsPerSec);

  // Union of outputs == declarative answer, exactly once each.
  std::vector<JoinPair> got;
  for (auto& sink : sinks) {
    for (const JoinOutput& o : sink->Outputs()) {
      got.push_back(JoinPair{o.left.ts, o.right.ts, o.left.key});
    }
  }
  std::sort(got.begin(), got.end());
  auto expect = ReferenceSlidingJoin(all, cfg.join.window);
  EXPECT_EQ(got, expect) << "seed " << seed;
}

// Seeds 1..N with N = SJOIN_FUZZ_ITERS (default 10): a soak run widens the
// seed range without rebuilding.
INSTANTIATE_TEST_SUITE_P(Seeds, MigrationFuzzTest,
                         ::testing::ValuesIn(FuzzSeeds(10)));

}  // namespace
}  // namespace sjoin
