#include "join/join_module.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "join/reference_join.h"

namespace sjoin {
namespace {

SystemConfig SmallCfg() {
  SystemConfig cfg;
  cfg.workload.tuple_bytes = 32;
  cfg.join.block_bytes = 128;           // 4 records per block
  cfg.join.theta_bytes = 1024;
  cfg.join.window = 100 * kUsPerMs;     // 100 ms window
  cfg.join.num_partitions = 4;
  return cfg;
}

Rec R(Time ts, std::uint64_t key, StreamId s) { return Rec{ts, key, s}; }

std::vector<JoinPair> SortedPairs(const CollectSink& sink) {
  std::vector<JoinPair> out;
  for (const JoinOutput& o : sink.Outputs()) {
    out.push_back(JoinPair{o.left.ts, o.right.ts, o.left.key});
  }
  std::sort(out.begin(), out.end());
  return out;
}

TEST(JoinModuleTest, SimpleCrossStreamMatch) {
  SystemConfig cfg = SmallCfg();
  CollectSink sink;
  JoinModule jm(cfg, &sink);
  std::vector<Rec> in = {R(1000, 42, 0), R(2000, 42, 1)};
  jm.EnqueueBatch(in);
  jm.ProcessFor(10'000, kUsPerSec);
  auto pairs = SortedPairs(sink);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0], (JoinPair{1000, 2000, 42}));
}

TEST(JoinModuleTest, NoMatchAcrossDifferentKeys) {
  SystemConfig cfg = SmallCfg();
  CollectSink sink;
  JoinModule jm(cfg, &sink);
  std::vector<Rec> in = {R(1000, 1, 0), R(2000, 2, 1)};
  jm.EnqueueBatch(in);
  jm.ProcessFor(10'000, kUsPerSec);
  EXPECT_TRUE(sink.Outputs().empty());
}

TEST(JoinModuleTest, NoMatchWithinSameStream) {
  SystemConfig cfg = SmallCfg();
  CollectSink sink;
  JoinModule jm(cfg, &sink);
  std::vector<Rec> in = {R(1000, 5, 0), R(2000, 5, 0)};
  jm.EnqueueBatch(in);
  jm.ProcessFor(10'000, kUsPerSec);
  EXPECT_TRUE(sink.Outputs().empty());
}

TEST(JoinModuleTest, WindowExcludesDistantPairs) {
  SystemConfig cfg = SmallCfg();  // window = 100 ms
  CollectSink sink;
  JoinModule jm(cfg, &sink);
  std::vector<Rec> in = {R(0, 9, 0), R(100 * kUsPerMs + 1, 9, 1)};
  jm.EnqueueBatch(in);
  jm.ProcessFor(kUsPerSec, kUsPerSec);
  EXPECT_TRUE(sink.Outputs().empty());
}

TEST(JoinModuleTest, WindowBoundaryInclusive) {
  SystemConfig cfg = SmallCfg();
  CollectSink sink;
  JoinModule jm(cfg, &sink);
  std::vector<Rec> in = {R(0, 9, 0), R(100 * kUsPerMs, 9, 1)};
  jm.EnqueueBatch(in);
  jm.ProcessFor(kUsPerSec, kUsPerSec);
  EXPECT_EQ(sink.Outputs().size(), 1u);
}

TEST(JoinModuleTest, NoDuplicateOutputs) {
  SystemConfig cfg = SmallCfg();
  CollectSink sink;
  JoinModule jm(cfg, &sink);
  // Many same-key tuples interleaved across streams: every cross pair once.
  std::vector<Rec> in;
  for (Time t = 1; t <= 20; ++t) {
    in.push_back(R(t * 1000, 7, static_cast<StreamId>(t % 2)));
  }
  jm.EnqueueBatch(in);
  jm.ProcessFor(kUsPerSec, 100 * kUsPerSec);
  auto pairs = SortedPairs(sink);
  EXPECT_EQ(pairs.size(), 100u);  // 10 x 10 cross pairs, all within window
  EXPECT_EQ(std::adjacent_find(pairs.begin(), pairs.end()), pairs.end());
}

TEST(JoinModuleTest, ProductionDelayStampsAfterWorkStart) {
  SystemConfig cfg = SmallCfg();
  CollectSink sink;
  JoinModule jm(cfg, &sink);
  std::vector<Rec> in = {R(1000, 3, 0), R(2000, 3, 1)};
  jm.EnqueueBatch(in);
  const Time start = 500'000;
  jm.ProcessFor(start, kUsPerSec);
  ASSERT_EQ(sink.Outputs().size(), 1u);
  const JoinOutput& o = sink.Outputs()[0];
  EXPECT_GE(o.produced_at, start);
  EXPECT_GT(o.ProductionDelay(), 0);
}

TEST(JoinModuleTest, BudgetLimitsProcessing) {
  SystemConfig cfg = SmallCfg();
  CollectSink sink;
  JoinModule jm(cfg, &sink);
  std::vector<Rec> in;
  for (Time t = 1; t <= 1000; ++t) {
    in.push_back(R(t, static_cast<std::uint64_t>(t) & 0xFFFF, 0));
  }
  jm.EnqueueBatch(in);
  // Budget for roughly one tuple's fixed cost.
  const Duration one = cfg.cost.TupleFixedCost(1);
  jm.ProcessFor(0, one);
  EXPECT_LT(jm.TuplesProcessed(), 10u);
  EXPECT_GT(jm.BufferedTuples(), 980u);
  // A large budget drains the rest.
  jm.ProcessFor(one, 365 * 24 * 3600 * kUsPerSec);
  EXPECT_EQ(jm.BufferedTuples(), 0u);
  EXPECT_EQ(jm.TuplesProcessed(), 1000u);
}

TEST(JoinModuleTest, ComparisonsChargeGrowsWithWindow) {
  SystemConfig cfg = SmallCfg();
  cfg.join.fine_tuning = false;
  CollectSink sink;
  JoinModule jm(cfg, &sink);
  std::vector<Rec> in;
  for (Time t = 1; t <= 200; ++t) {
    in.push_back(R(t * 10, 77, static_cast<StreamId>(t % 2)));
  }
  jm.EnqueueBatch(in);
  jm.ProcessFor(kUsPerSec, 1000 * kUsPerSec);
  // Each probe scans the opposite partition: quadratic growth overall.
  EXPECT_GT(jm.Comparisons(), 4000u);
}

TEST(JoinModuleTest, ExtractInstallPreservesOutputs) {
  SystemConfig cfg = SmallCfg();
  cfg.join.window = 10 * kUsPerSec;

  // Reference: everything processed on one module.
  std::vector<Rec> all;
  for (Time t = 1; t <= 100; ++t) {
    // Two hot keys so matches definitely exist; key 1 and key 2 land in
    // (possibly) different partitions.
    all.push_back(R(t * 1000, static_cast<std::uint64_t>(1 + (t % 2)),
                    static_cast<StreamId>((t / 2) % 2)));
  }
  auto expect = ReferenceSlidingJoin(all, cfg.join.window);

  // Split processing: module A handles the first half, then one partition
  // migrates to module B, which receives the rest of that partition's
  // tuples while A keeps the other partition.
  CollectSink sink_a;
  CollectSink sink_b;
  JoinModule a(cfg, &sink_a);
  JoinModule b(cfg, &sink_b);

  std::vector<Rec> first(all.begin(), all.begin() + 50);
  a.EnqueueBatch(first);
  a.ProcessFor(0, 1000 * kUsPerSec);

  const PartitionId moving = PartitionOf(1, cfg.join.num_partitions);
  Duration cost = 0;
  std::vector<Rec> pending;
  auto group = a.ExtractGroup(moving, 0, cost, pending);
  Writer w;
  EncodeGroupState(w, *group);
  Reader r(w.Bytes());
  b.InstallGroup(moving,
                 DecodeGroupState(r, cfg.join, cfg.workload.tuple_bytes));
  b.EnqueueBatch(pending);

  for (std::size_t i = 50; i < all.size(); ++i) {
    const Rec& rec = all[i];
    if (PartitionOf(rec.key, cfg.join.num_partitions) == moving) {
      b.EnqueueBatch(std::span<const Rec>(&rec, 1));
    } else {
      a.EnqueueBatch(std::span<const Rec>(&rec, 1));
    }
  }
  a.ProcessFor(2000 * kUsPerSec, 10000 * kUsPerSec);
  b.ProcessFor(2000 * kUsPerSec, 10000 * kUsPerSec);

  std::vector<JoinPair> got = SortedPairs(sink_a);
  auto got_b = SortedPairs(sink_b);
  got.insert(got.end(), got_b.begin(), got_b.end());
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, expect);
}

TEST(JoinModuleTest, FineTuningReducesComparisonsOnLargeWindows) {
  SystemConfig cfg = SmallCfg();
  cfg.join.window = 1000 * kUsPerSec;
  cfg.join.theta_bytes = 512;  // split above 1 KB = 32 records
  cfg.join.num_partitions = 1;

  std::vector<Rec> in;
  Pcg32 rng(3, 4);
  for (Time t = 1; t <= 4000; ++t) {
    in.push_back(R(t * 100, rng.NextBounded(1000),
                   static_cast<StreamId>(t % 2)));
  }

  auto run = [&](bool tuning) {
    SystemConfig c = cfg;
    c.join.fine_tuning = tuning;
    StatsSink sink;
    JoinModule jm(c, &sink);
    jm.EnqueueBatch(in);
    jm.ProcessFor(0, 100000 * kUsPerSec);
    return jm.Comparisons();
  };

  const std::uint64_t with = run(true);
  const std::uint64_t without = run(false);
  EXPECT_LT(with * 4, without)
      << "tuning should cut BNL comparisons by far more than 4x here";
}

TEST(JoinModuleTest, OutputCountMatchesSinkDeliveries) {
  SystemConfig cfg = SmallCfg();
  CollectSink sink;
  JoinModule jm(cfg, &sink);
  std::vector<Rec> in;
  for (Time t = 1; t <= 50; ++t) {
    in.push_back(R(t * 500, static_cast<std::uint64_t>(t % 5),
                   static_cast<StreamId>(t % 2)));
  }
  jm.EnqueueBatch(in);
  jm.ProcessFor(0, 1000 * kUsPerSec);
  EXPECT_EQ(jm.Outputs(), sink.Outputs().size());
}

}  // namespace
}  // namespace sjoin
