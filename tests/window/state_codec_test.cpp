#include "window/state_codec.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"

namespace sjoin {
namespace {

constexpr sjoin::Time kFarFuture = 9'000'000'000'000;

JoinConfig SmallCfg(bool tuning = true) {
  JoinConfig cfg;
  cfg.block_bytes = 128;
  cfg.theta_bytes = 256;
  cfg.fine_tuning = tuning;
  cfg.max_global_depth = 8;
  return cfg;
}
constexpr std::size_t kTupleBytes = 32;

std::unique_ptr<PartitionGroup> MakeTunedGroup(std::size_t n,
                                               std::uint64_t seed,
                                               std::vector<Rec>* recs_out) {
  auto g = std::make_unique<PartitionGroup>(SmallCfg(), kTupleBytes);
  Pcg32 rng(seed, 2);
  for (std::size_t i = 0; i < n; ++i) {
    Rec r{static_cast<Time>(i + 1), rng.NextU64(),
          static_cast<StreamId>(i % 2)};
    g->InstallSealed(r);
    if (recs_out != nullptr) recs_out->push_back(r);
    if (i % 16 == 15) g->MaybeTune(r.key);
  }
  return g;
}

TEST(StateCodecTest, RoundTripPreservesCountsAndShape) {
  std::vector<Rec> recs;
  auto g = MakeTunedGroup(80, 11, &recs);
  Writer w;
  EncodeGroupState(w, *g);
  Reader r(w.Bytes());
  auto back = DecodeGroupState(r, SmallCfg(), kTupleBytes);
  EXPECT_TRUE(r.AtEnd());

  EXPECT_EQ(back->TotalCount(), g->TotalCount());
  EXPECT_EQ(back->MiniGroupCount(), g->MiniGroupCount());
  EXPECT_EQ(back->Directory().GlobalDepth(), g->Directory().GlobalDepth());
}

TEST(StateCodecTest, RoundTripPreservesEveryRecordAndProbeVisibility) {
  std::vector<Rec> recs;
  auto g = MakeTunedGroup(100, 13, &recs);
  Writer w;
  EncodeGroupState(w, *g);
  Reader r(w.Bytes());
  auto back = DecodeGroupState(r, SmallCfg(), kTupleBytes);

  for (const Rec& rec : recs) {
    auto orig = g->GroupFor(rec.key).Part(rec.stream).ProbeSealed(rec.key, 0, kFarFuture);
    auto rebuilt =
        back->GroupFor(rec.key).Part(rec.stream).ProbeSealed(rec.key, 0, kFarFuture);
    EXPECT_EQ(std::vector<Time>(orig.begin(), orig.end()),
              std::vector<Time>(rebuilt.begin(), rebuilt.end()));
  }
}

TEST(StateCodecTest, EmptyGroupRoundTrips) {
  PartitionGroup g(SmallCfg(), kTupleBytes);
  Writer w;
  EncodeGroupState(w, g);
  Reader r(w.Bytes());
  auto back = DecodeGroupState(r, SmallCfg(), kTupleBytes);
  EXPECT_EQ(back->TotalCount(), 0u);
  EXPECT_EQ(back->MiniGroupCount(), 1u);
}

TEST(StateCodecTest, UntunedGroupRoundTrips) {
  PartitionGroup g(SmallCfg(/*tuning=*/false), kTupleBytes);
  for (Time t = 1; t <= 30; ++t) {
    g.InstallSealed(Rec{t, static_cast<std::uint64_t>(t * 7),
                        static_cast<StreamId>(t % 2)});
  }
  Writer w;
  EncodeGroupState(w, g);
  Reader r(w.Bytes());
  auto back = DecodeGroupState(r, SmallCfg(/*tuning=*/false), kTupleBytes);
  EXPECT_EQ(back->TotalCount(), 30u);
}

TEST(StateCodecTest, EncodedSizeScalesWithTuples) {
  std::vector<Rec> recs;
  auto small = MakeTunedGroup(16, 17, &recs);
  auto large = MakeTunedGroup(160, 17, nullptr);
  Writer ws;
  Writer wl;
  EncodeGroupState(ws, *small);
  EncodeGroupState(wl, *large);
  // State movement cost is dominated by the records (>= wire tuple bytes
  // per record).
  EXPECT_GE(wl.Size() - ws.Size(), (160 - 16) * kTupleBytes);
}

TEST(StateCodecTest, TruncatedStateThrows) {
  std::vector<Rec> recs;
  auto g = MakeTunedGroup(40, 19, &recs);
  Writer w;
  EncodeGroupState(w, *g);
  auto bytes = w.Bytes();
  Reader r(bytes.subspan(0, bytes.size() / 2));
  EXPECT_THROW(DecodeGroupState(r, SmallCfg(), kTupleBytes), DecodeError);
}

}  // namespace
}  // namespace sjoin
