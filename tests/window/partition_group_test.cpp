#include "window/partition_group.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"

namespace sjoin {
namespace {

constexpr sjoin::Time kFarFuture = 9'000'000'000'000;

// Small geometry for tests: 32-byte tuples, 128-byte blocks (4 per block),
// theta = 256 bytes => split above 512 B (16 tuples), merge below 256 B.
JoinConfig SmallCfg(bool tuning = true) {
  JoinConfig cfg;
  cfg.block_bytes = 128;
  cfg.theta_bytes = 256;
  cfg.fine_tuning = tuning;
  cfg.max_global_depth = 8;
  return cfg;
}
constexpr std::size_t kTupleBytes = 32;

// Installs `n` sealed records with distinct keys drawn from an RNG.
std::vector<Rec> InstallRandom(PartitionGroup& g, std::size_t n,
                               std::uint64_t seed, Time start_ts = 1) {
  Pcg32 rng(seed, 2);
  std::vector<Rec> recs;
  for (std::size_t i = 0; i < n; ++i) {
    Rec r{start_ts + static_cast<Time>(i), rng.NextU64(),
          static_cast<StreamId>(i % 2)};
    g.InstallSealed(r);
    recs.push_back(r);
  }
  return recs;
}

TEST(PartitionGroupTest, CountsTrackInstalls) {
  PartitionGroup g(SmallCfg(), kTupleBytes);
  InstallRandom(g, 10, 1);
  EXPECT_EQ(g.TotalCount(), 10u);
  EXPECT_EQ(g.TotalBytes(), 10 * kTupleBytes);
}

TEST(PartitionGroupTest, TuneSplitsOversizedGroup) {
  PartitionGroup g(SmallCfg(), kTupleBytes);
  auto recs = InstallRandom(g, 40, 2);  // 1280 B > 2*theta = 512 B
  EXPECT_EQ(g.MiniGroupCount(), 1u);
  std::size_t moved = g.MaybeTune(recs[0].key);
  EXPECT_GT(moved, 0u);
  EXPECT_GT(g.Splits(), 0u);
  EXPECT_GT(g.MiniGroupCount(), 1u);
  EXPECT_EQ(g.TotalCount(), 40u);  // no record lost
}

TEST(PartitionGroupTest, SplitPreservesEveryRecord) {
  PartitionGroup g(SmallCfg(), kTupleBytes);
  auto recs = InstallRandom(g, 64, 3);
  g.MaybeTune(recs[0].key);
  // Every record must be findable in the mini-group its key routes to.
  for (const Rec& r : recs) {
    MiniGroup& mg = g.GroupFor(r.key);
    auto m = mg.Part(r.stream).ProbeSealed(r.key, 0, kFarFuture);
    EXPECT_FALSE(m.empty()) << "lost record key=" << r.key;
  }
}

TEST(PartitionGroupTest, NoTuningWhenDisabled) {
  PartitionGroup g(SmallCfg(/*tuning=*/false), kTupleBytes);
  auto recs = InstallRandom(g, 100, 4);
  EXPECT_EQ(g.MaybeTune(recs[0].key), 0u);
  EXPECT_EQ(g.MiniGroupCount(), 1u);
  EXPECT_EQ(g.Splits(), 0u);
}

TEST(PartitionGroupTest, NoSplitBelowThreshold) {
  PartitionGroup g(SmallCfg(), kTupleBytes);
  auto recs = InstallRandom(g, 12, 5);  // 384 B <= 512 B
  // 12 tuples = 384 B which is above theta (256) but not above 2*theta.
  EXPECT_EQ(g.MaybeTune(recs[0].key), 0u);
  EXPECT_EQ(g.MiniGroupCount(), 1u);
}

TEST(PartitionGroupTest, RepeatedGrowthKeepsMiniGroupsBounded) {
  PartitionGroup g(SmallCfg(), kTupleBytes);
  Pcg32 rng(6, 2);
  Time ts = 1;
  for (int round = 0; round < 50; ++round) {
    std::uint64_t last_key = 0;
    for (int i = 0; i < 8; ++i) {
      Rec r{ts++, rng.NextU64(), static_cast<StreamId>(i % 2)};
      last_key = r.key;
      g.InstallSealed(r);
    }
    g.MaybeTune(last_key);
  }
  // With 400 tuples and a 16-tuple 2*theta cap, tuning must have split the
  // group into many mini-groups, and the one we touched last respects the
  // bound unless the directory hit max depth.
  EXPECT_GT(g.MiniGroupCount(), 10u);
  EXPECT_EQ(g.TotalCount(), 400u);
}

TEST(PartitionGroupTest, MergeAfterShrinking) {
  PartitionGroup g(SmallCfg(), kTupleBytes);
  auto recs = InstallRandom(g, 64, 7);
  g.MaybeTune(recs[0].key);
  std::size_t buckets_before = g.MiniGroupCount();
  ASSERT_GT(buckets_before, 1u);

  // Empty the group by expiring everything (simulate via fresh group and
  // count adjustment): rebuild scenario -- expire all blocks from every
  // mini-partition by a far-future watermark is blocked by head retention,
  // so instead check the merge path directly: a group whose mini-groups are
  // all tiny merges down when touched.
  PartitionGroup g2(SmallCfg(), kTupleBytes);
  auto recs2 = InstallRandom(g2, 64, 8);
  g2.MaybeTune(recs2[0].key);
  ASSERT_GT(g2.MiniGroupCount(), 1u);

  // Drain: expire as much as possible from each mini-partition.
  g2.ForEachMiniGroup([&](MiniGroup& mg) {
    for (StreamId s = 0; s < kStreamCount; ++s) {
      auto expired = mg.Part(s).ExpireBlocks(1'000'000'000);
      std::size_t n = 0;
      for (const Block& b : expired) n += b.Size();
      g2.AddCount(-static_cast<std::ptrdiff_t>(n));
    }
  });
  std::size_t before = g2.MiniGroupCount();
  g2.MaybeTune(recs2[0].key);
  EXPECT_LE(g2.MiniGroupCount(), before);
  EXPECT_GT(g2.Merges(), 0u);
}

TEST(PartitionGroupTest, ForceBucketDepthRebuildsShape) {
  PartitionGroup g(SmallCfg(), kTupleBytes);
  g.ForceBucketDepth(0b01, 2);
  g.ForceBucketDepth(0b11, 2);
  // Pattern 01 and 11 now live in distinct depth-2 buckets.
  EXPECT_GE(g.Directory().GlobalDepth(), 2u);
  EXPECT_EQ(g.Directory().Find(0b01).local_depth, 2u);
  EXPECT_EQ(g.Directory().Find(0b11).local_depth, 2u);
}

TEST(PartitionGroupTest, TuneHashDecorrelatedFromIdentity) {
  // Keys 0..63 must not all land in one half of the tuning hash space.
  int ones = 0;
  for (std::uint64_t k = 0; k < 64; ++k) {
    ones += static_cast<int>(PartitionGroup::TuneHash(k) & 1);
  }
  EXPECT_GT(ones, 16);
  EXPECT_LT(ones, 48);
}

TEST(MiniGroupTest, LazyInitialization) {
  MiniGroup mg;
  EXPECT_FALSE(mg.Initialized());
  EXPECT_EQ(mg.TotalCount(), 0u);
  EXPECT_EQ(mg.MaxSeenTs(), 0);
  mg.Init(4);
  EXPECT_TRUE(mg.Initialized());
  mg.Part(0).Insert(Rec{5, 1, 0});
  EXPECT_EQ(mg.TotalCount(), 1u);
  EXPECT_EQ(mg.MaxSeenTs(), 5);
}

}  // namespace
}  // namespace sjoin
