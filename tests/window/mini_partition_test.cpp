#include "window/mini_partition.h"

#include <gtest/gtest.h>

namespace sjoin {
namespace {

constexpr sjoin::Time kFarFuture = 9'000'000'000'000;

Rec R(Time ts, std::uint64_t key, StreamId s = 0) { return Rec{ts, key, s}; }

TEST(MiniPartitionTest, InsertedRecordsAreFreshUntilSealed) {
  MiniPartition p(4);
  p.Insert(R(1, 10));
  p.Insert(R(2, 10));
  EXPECT_EQ(p.FreshCount(), 2u);
  EXPECT_EQ(p.SealedCount(), 0u);
  // Fresh records are invisible to probes (duplicate-elimination rule).
  EXPECT_TRUE(p.ProbeSealed(10, 0, kFarFuture).empty());

  p.Seal();
  EXPECT_EQ(p.FreshCount(), 0u);
  EXPECT_EQ(p.SealedCount(), 2u);
  EXPECT_EQ(p.ProbeSealed(10, 0, kFarFuture).size(), 2u);
}

TEST(MiniPartitionTest, HeadFullOnlyWithFreshContent) {
  MiniPartition p(2);
  p.Insert(R(1, 1));
  EXPECT_FALSE(p.HeadFull());
  p.Insert(R(2, 2));
  EXPECT_TRUE(p.HeadFull());
  p.Seal();
  EXPECT_FALSE(p.HeadFull());  // full but nothing fresh
}

TEST(MiniPartitionTest, ProbeFiltersByKeyAndWindow) {
  MiniPartition p(8);
  p.Insert(R(100, 7));
  p.Insert(R(200, 7));
  p.Insert(R(300, 9));
  p.Seal();
  // Probe for key 7 within the window starting at ts >= 150.
  auto m = p.ProbeSealed(7, 150, kFarFuture);
  ASSERT_EQ(m.size(), 1u);
  EXPECT_EQ(m[0], 200);
  // min_ts below everything returns both.
  EXPECT_EQ(p.ProbeSealed(7, 0, kFarFuture).size(), 2u);
  // Unknown key.
  EXPECT_TRUE(p.ProbeSealed(1234, 0, kFarFuture).empty());
}

TEST(MiniPartitionTest, ProbeSpanIsAscendingTimestamps) {
  MiniPartition p(8);
  for (Time t = 1; t <= 5; ++t) p.Insert(R(t * 10, 3));
  p.Seal();
  auto m = p.ProbeSealed(3, 0, kFarFuture);
  ASSERT_EQ(m.size(), 5u);
  for (std::size_t i = 1; i < m.size(); ++i) EXPECT_GT(m[i], m[i - 1]);
}

TEST(MiniPartitionTest, ExpireRemovesWholeOldBlocks) {
  MiniPartition p(2);  // tiny blocks
  p.Insert(R(1, 1));
  p.Insert(R(2, 1));
  p.Seal();
  p.Insert(R(10, 1));
  p.Insert(R(11, 1));
  p.Seal();
  p.Insert(R(20, 1));  // head block, stays
  EXPECT_EQ(p.BlockCount(), 3u);

  auto expired = p.ExpireBlocks(/*low_ts=*/5);
  ASSERT_EQ(expired.size(), 1u);
  EXPECT_EQ(expired[0].MaxTs(), 2);
  EXPECT_EQ(p.TotalCount(), 3u);
  EXPECT_EQ(p.SealedCount(), 2u);
  // Expired records are no longer probe-visible.
  EXPECT_EQ(p.ProbeSealed(1, 0, kFarFuture).size(), 2u);
}

TEST(MiniPartitionTest, HeadBlockNeverExpires) {
  MiniPartition p(2);
  p.Insert(R(1, 1));
  p.Insert(R(2, 1));
  p.Seal();
  // Even with a watermark far past everything, the head block stays.
  auto expired = p.ExpireBlocks(1'000'000);
  EXPECT_TRUE(expired.empty());
  EXPECT_EQ(p.TotalCount(), 2u);
}

TEST(MiniPartitionTest, BlockExpiresOnlyWhenNewestRecordIsOld) {
  MiniPartition p(2);
  p.Insert(R(1, 1));
  p.Insert(R(100, 1));  // same block: newest ts 100
  p.Seal();
  p.Insert(R(200, 1));
  // low_ts = 50: record at ts=1 is out of window but its block is not.
  EXPECT_TRUE(p.ExpireBlocks(50).empty());
  EXPECT_EQ(p.ExpireBlocks(150).size(), 1u);
}

TEST(MiniPartitionTest, ExpiryKeepsIndexConsistentAcrossManyBlocks) {
  MiniPartition p(4);
  for (Time t = 1; t <= 100; ++t) {
    p.Insert(R(t, static_cast<std::uint64_t>(t % 3)));
    p.Seal();
  }
  (void)p.ExpireBlocks(50);
  // Remaining probe-visible timestamps must all be >= 49 (block granular).
  for (std::uint64_t k = 0; k < 3; ++k) {
    for (Time ts : p.ProbeSealed(k, 0, kFarFuture)) EXPECT_GE(ts, 45);
  }
  // And probing with a min_ts still works.
  auto m = p.ProbeSealed(0, 90, kFarFuture);
  for (Time ts : m) EXPECT_GE(ts, 90);
}

TEST(MiniPartitionTest, InstallSealedIsImmediatelyVisible) {
  MiniPartition p(4);
  p.InstallSealed(R(5, 42));
  p.InstallSealed(R(6, 42));
  EXPECT_EQ(p.FreshCount(), 0u);
  EXPECT_EQ(p.SealedCount(), 2u);
  EXPECT_EQ(p.ProbeSealed(42, 0, kFarFuture).size(), 2u);
}

TEST(MiniPartitionTest, MixedInstallAndInsertKeepTemporalOrder) {
  MiniPartition p(4);
  p.InstallSealed(R(5, 1));
  p.Insert(R(7, 1));
  EXPECT_EQ(p.FreshCount(), 1u);
  EXPECT_EQ(p.SealedCount(), 1u);
  p.Seal();
  auto m = p.ProbeSealed(1, 0, kFarFuture);
  ASSERT_EQ(m.size(), 2u);
  EXPECT_EQ(m[0], 5);
  EXPECT_EQ(m[1], 7);
}

TEST(MiniPartitionTest, ForEachRecordVisitsInTemporalOrder) {
  MiniPartition p(2);
  for (Time t = 1; t <= 7; ++t) {
    p.Insert(R(t, 9));
    p.Seal();
  }
  Time prev = 0;
  std::size_t n = 0;
  p.ForEachRecord([&](const Rec& r) {
    EXPECT_GT(r.ts, prev);
    prev = r.ts;
    ++n;
  });
  EXPECT_EQ(n, 7u);
}

TEST(MiniPartitionTest, IndexCompactionUnderLongExpiryStream) {
  // Exercise the dead-prefix compaction path (> 64 expired per key).
  MiniPartition p(4);
  for (Time t = 1; t <= 2000; ++t) {
    p.Insert(R(t, 0));
    p.Seal();
    (void)p.ExpireBlocks(t - 100);
  }
  auto m = p.ProbeSealed(0, 0, kFarFuture);
  EXPECT_GE(m.size(), 90u);
  EXPECT_LE(m.size(), 110u);
}

TEST(MiniPartitionTest, IndexTracksLiveKeysAcrossSealAndExpire) {
  MiniPartition p(4);
  // 64 distinct keys, sealed as each block fills (the join module's
  // HeadFull rule): every sealed key must be indexed.
  for (Time t = 1; t <= 64; ++t) {
    p.Insert(R(t, static_cast<std::uint64_t>(t)));
    p.Seal();
  }
  EXPECT_EQ(p.IndexKeyCount(), 64u);

  // Expire everything expirable (the head block never expires): only keys
  // with surviving records may stay in the index -- dead keys must be
  // erased, not left as empty queues.
  (void)p.ExpireBlocks(kFarFuture);
  EXPECT_LE(p.IndexKeyCount(), 4u);
  EXPECT_EQ(p.IndexKeyCount(), p.TotalCount());  // keys are all distinct
  EXPECT_TRUE(p.ProbeSealed(1, 0, kFarFuture).empty());

  // Partial expiry: key 1's records all predate the horizon, key 2 stays.
  MiniPartition q(4);
  for (Time t = 100; t < 108; ++t) {
    q.Insert(R(t, 1));
    q.Seal();
  }
  for (Time t = 200; t < 208; ++t) {
    q.Insert(R(t, 2));
    q.Seal();
  }
  EXPECT_EQ(q.IndexKeyCount(), 2u);
  (void)q.ExpireBlocks(150);
  EXPECT_EQ(q.IndexKeyCount(), 1u);
  EXPECT_TRUE(q.ProbeSealed(1, 0, kFarFuture).empty());
  EXPECT_FALSE(q.ProbeSealed(2, 0, kFarFuture).empty());
}

TEST(MiniPartitionTest, IndexBucketsShrinkAfterBurst) {
  // A bursty run: a wide distinct-key burst grows the bucket array, then
  // the keys die. The shrink rule must rehash the table back down instead
  // of carrying thousands of empty buckets for the rest of the run.
  MiniPartition p(4);
  for (Time t = 1; t <= 20000; ++t) {
    p.Insert(R(t, static_cast<std::uint64_t>(t)));  // all keys distinct
    p.Seal();
  }
  const std::size_t peak = p.IndexBucketCount();
  ASSERT_GT(peak, 1024u);
  (void)p.ExpireBlocks(kFarFuture);
  EXPECT_LE(p.IndexKeyCount(), 4u);  // head block only
  EXPECT_LT(p.IndexBucketCount(), peak / 4);
}

}  // namespace
}  // namespace sjoin
