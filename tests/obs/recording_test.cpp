// `.sjrec` bundle format tests: manifest/config codec round-trips, writer ->
// loader round-trips through a real file, torn-tail tolerance (a crashed
// recorder's bundle must still load -- that is the bundle one wants most),
// and seeded fuzz over random event streams and random truncation points.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "obs/recording.h"
#include "testutil/fuzz_env.h"

namespace sjoin::obs {
namespace {

struct TempDir {
  std::string path;
  TempDir() {
    static int counter = 0;
    path = (std::filesystem::temp_directory_path() /
            ("sjoin_rec_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter++)))
               .string();
    std::filesystem::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
};

SystemConfig NonDefaultConfig() {
  SystemConfig cfg;
  cfg.num_slaves = 5;
  cfg.initial_active_slaves = 3;
  cfg.join.num_partitions = 48;
  cfg.join.window = 123456;
  cfg.join.fine_tuning = true;
  cfg.balance.beta = 0.77;
  cfg.epoch.t_dist = 7777;
  cfg.epoch.use_punctuation = true;
  cfg.epoch_tuner.enabled = true;
  cfg.epoch_tuner.grow_factor = 1.5;
  cfg.replication.enabled = true;
  cfg.replication.ckpt_interval_epochs = 3;
  cfg.slave.workers = 4;
  cfg.cluster.elastic.enabled = true;
  cfg.cluster.elastic.drain_groups_per_epoch = 9;
  cfg.cluster.elastic.policy = true;
  cfg.cluster.elastic.surge_occupancy = 0.9;
  cfg.net.use_inet = true;
  cfg.obs.delay_sample_rate = 13;
  cfg.obs.record_dir = "somewhere/else";
  cfg.workload.lambda = 321.5;
  cfg.workload.rate_schedule.push_back(RatePhase{1000, 50.0});
  cfg.workload.rate_schedule.push_back(RatePhase{2000, 150.0});
  cfg.workload.b_skew = 0.3;
  cfg.workload.key_domain = 999;
  cfg.workload.tuple_bytes = 72;
  cfg.workload.seed = 424242;
  cfg.cost.cmp_ns = 1.25;
  cfg.cost.msg_fixed_us = 17;
  return cfg;
}

RecordedFrame RandomFrame(Pcg32& rng) {
  RecordedFrame f;
  f.peer = rng.NextBounded(8);
  f.type = static_cast<std::uint8_t>(1 + rng.NextBounded(19));
  f.trace_id = rng.NextU64();
  f.parent_span = rng.NextU64();
  f.send_vt = static_cast<Time>(rng.NextBounded(1 << 20));
  const std::uint32_t len = rng.NextBounded(64);
  f.payload.reserve(len);
  for (std::uint32_t i = 0; i < len; ++i) {
    f.payload.push_back(static_cast<std::uint8_t>(rng.NextBounded(256)));
  }
  return f;
}

TEST(RecordingCodecTest, SystemConfigRoundTripsEveryField) {
  const SystemConfig cfg = NonDefaultConfig();
  Writer w;
  EncodeSystemConfig(w, cfg);
  Reader r(w.Bytes());
  const SystemConfig back = DecodeSystemConfig(r);
  EXPECT_TRUE(r.AtEnd());
  // Spot-check across every sub-struct; a full byte-compare of re-encoding
  // catches the rest.
  EXPECT_EQ(back.num_slaves, 5u);
  EXPECT_EQ(back.initial_active_slaves, 3u);
  EXPECT_EQ(back.join.num_partitions, 48u);
  EXPECT_TRUE(back.epoch.use_punctuation);
  EXPECT_TRUE(back.cluster.elastic.policy);
  EXPECT_EQ(back.workload.rate_schedule.size(), 2u);
  EXPECT_DOUBLE_EQ(back.workload.rate_schedule[1].rate_per_sec, 150.0);
  EXPECT_EQ(back.cost.msg_fixed_us, 17);
  Writer w2;
  EncodeSystemConfig(w2, back);
  EXPECT_EQ(w.Bytes().size(), w2.Bytes().size());
  EXPECT_TRUE(std::equal(w.Bytes().begin(), w.Bytes().end(),
                         w2.Bytes().begin()));
}

TEST(RecordingCodecTest, ManifestRoundTripsWithInputTrace) {
  RecordingManifest m;
  m.build_version = "test-build";
  m.rank = 0;
  m.membership_epoch = 12;
  m.cfg = NonDefaultConfig();
  m.config_summary = Summarize(m.cfg);
  m.has_input_trace = true;
  m.input_trace = {Rec{10, 7, 0}, Rec{20, 9, 1}, Rec{30, 7, 1}};
  m.wall_run_for = 10'000'000;
  m.wall_recv_timeout_us = 250'000;
  m.wall_recv_max_retries = 3;
  Writer w;
  EncodeManifest(w, m);
  Reader r(w.Bytes());
  const RecordingManifest back = DecodeManifest(r);
  EXPECT_TRUE(r.AtEnd());
  EXPECT_EQ(back.build_version, "test-build");
  EXPECT_EQ(back.membership_epoch, 12u);
  EXPECT_EQ(back.config_summary, m.config_summary);
  ASSERT_TRUE(back.has_input_trace);
  ASSERT_EQ(back.input_trace.size(), 3u);
  EXPECT_EQ(back.input_trace[2].ts, 30);
  EXPECT_EQ(back.input_trace[2].key, 7u);
  EXPECT_EQ(back.wall_run_for, 10'000'000);
  EXPECT_EQ(back.wall_recv_timeout_us, 250'000);
  EXPECT_EQ(back.wall_recv_max_retries, 3u);
}

TEST(RecordingCodecTest, ManifestRejectsWrongSchema) {
  RecordingManifest m;
  Writer w;
  EncodeManifest(w, m);
  std::vector<std::uint8_t> bytes(w.Bytes().begin(), w.Bytes().end());
  bytes[0] = 99;  // schema field is the leading u32
  Reader r(bytes);
  EXPECT_THROW((void)DecodeManifest(r), DecodeError);
}

TEST(RecordingWriterTest, WriterLoaderRoundTrip) {
  TempDir dir;
  const std::string path = RecordingBundlePath(dir.path + "/nested", 3);
  RecordingManifest m;
  m.rank = 3;
  m.cfg = NonDefaultConfig();
  RecordingWriter writer;
  ASSERT_TRUE(writer.Open(path, m));
  EXPECT_TRUE(writer.IsOpen());

  Pcg32 rng(5, 9);
  std::vector<RecordedEvent> expected;
  for (int i = 0; i < 200; ++i) {
    switch (rng.NextBounded(4)) {
      case 0: {
        RecordedFrame f = RandomFrame(rng);
        writer.FrameIn(f);
        expected.push_back(RecordedEvent{RecordKind::kFrameIn, f});
        break;
      }
      case 1: {
        RecordedFrame f = RandomFrame(rng);
        writer.FrameOut(f);
        expected.push_back(RecordedEvent{RecordKind::kFrameOut, f});
        break;
      }
      case 2: {
        const std::uint32_t peer = rng.NextBounded(8);
        writer.Timeout(peer);
        RecordedEvent ev;
        ev.kind = RecordKind::kTimeout;
        ev.frame.peer = peer;
        expected.push_back(ev);
        break;
      }
      default: {
        writer.Closed(kRecordAnyPeer);
        RecordedEvent ev;
        ev.kind = RecordKind::kClosed;
        ev.frame.peer = kRecordAnyPeer;
        expected.push_back(ev);
        break;
      }
    }
  }
  writer.Close();
  EXPECT_FALSE(writer.IsOpen());

  LoadRecordingResult res = LoadRecording(path);
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_FALSE(res.recording.truncated_tail);
  EXPECT_EQ(res.recording.manifest.rank, 3u);
  ASSERT_EQ(res.recording.events.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(res.recording.events[i], expected[i]) << "event " << i;
  }
}

TEST(RecordingWriterTest, AppendsAfterCloseAreNoOps) {
  TempDir dir;
  const std::string path = RecordingBundlePath(dir.path, 1);
  RecordingWriter writer;
  RecordingManifest m;
  m.rank = 1;
  ASSERT_TRUE(writer.Open(path, m));
  writer.Timeout(0);
  writer.Close();
  writer.Timeout(0);  // dropped
  writer.Closed(0);   // dropped
  LoadRecordingResult res = LoadRecording(path);
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_EQ(res.recording.events.size(), 1u);
}

TEST(RecordingLoaderTest, RejectsBadMagicAndTruncatedHeader) {
  TempDir dir;
  const std::string bad = dir.path + "/bad.sjrec";
  {
    std::ofstream out(bad, std::ios::binary);
    out << "NOTSJREC-AT-ALL";
  }
  EXPECT_FALSE(LoadRecording(bad).ok);
  EXPECT_FALSE(LoadRecording(dir.path + "/missing.sjrec").ok);
}

// Torn tails at every possible byte boundary inside the record stream load
// with events intact up to the tear; tears inside the header/manifest fail
// with an error instead. Never a crash, never a bogus event.
TEST(RecordingLoaderTest, TornTailFuzzAtEveryTruncationPoint) {
  TempDir dir;
  const std::string path = RecordingBundlePath(dir.path, 2);
  RecordingManifest m;
  m.rank = 2;
  RecordingWriter writer;
  ASSERT_TRUE(writer.Open(path, m));
  Pcg32 rng(11, 13);
  for (int i = 0; i < 12; ++i) writer.FrameIn(RandomFrame(rng));
  writer.Close();

  std::ifstream in(path, std::ios::binary);
  std::vector<char> bytes{std::istreambuf_iterator<char>(in),
                          std::istreambuf_iterator<char>()};
  LoadRecordingResult whole = LoadRecording(path);
  ASSERT_TRUE(whole.ok);
  const std::size_t total_events = whole.recording.events.size();
  ASSERT_EQ(total_events, 12u);

  // Byte offsets at which the file ends exactly on a record boundary: a cut
  // there produces a clean shorter bundle, not a torn one.
  std::vector<std::size_t> boundaries;
  {
    std::size_t at = sizeof(kRecordingMagic) + 4;  // magic + schema
    std::uint32_t manifest_len = 0;
    std::memcpy(&manifest_len, bytes.data() + at, 4);
    at += 4 + manifest_len;
    boundaries.push_back(at);
    while (at + 4 <= bytes.size()) {
      std::uint32_t len = 0;
      std::memcpy(&len, bytes.data() + at, 4);
      at += 4 + len;
      boundaries.push_back(at);
    }
  }
  auto on_boundary = [&](std::size_t cut) {
    return std::find(boundaries.begin(), boundaries.end(), cut) !=
           boundaries.end();
  };

  // Exhaustive over the whole file when small, else seeded samples.
  std::vector<std::size_t> cuts;
  if (bytes.size() <= 4096) {
    for (std::size_t c = 0; c < bytes.size(); ++c) cuts.push_back(c);
  } else {
    Pcg32 cut_rng(3, 1);
    const int iters = FuzzIters(512);
    for (int i = 0; i < iters; ++i) {
      cuts.push_back(cut_rng.NextBounded(
          static_cast<std::uint32_t>(bytes.size())));
    }
  }
  const std::string cut_path = dir.path + "/cut.sjrec";
  for (const std::size_t cut : cuts) {
    {
      std::ofstream out(cut_path, std::ios::binary | std::ios::trunc);
      out.write(bytes.data(), static_cast<std::streamsize>(cut));
    }
    LoadRecordingResult res = LoadRecording(cut_path);
    if (!res.ok) continue;  // header/manifest tears are errors, fine
    EXPECT_LE(res.recording.events.size(), total_events);
    for (const RecordedEvent& ev : res.recording.events) {
      EXPECT_GE(static_cast<int>(ev.kind), 1);
      EXPECT_LE(static_cast<int>(ev.kind), 4);
    }
    if (res.recording.events.size() < total_events && !on_boundary(cut)) {
      EXPECT_TRUE(res.recording.truncated_tail) << "cut at " << cut;
    }
  }
}

// Random single-byte corruption inside the record stream must never crash
// the loader: it either still parses (the flip landed in a payload byte or
// produced another structurally-valid stream) or fails with an error.
TEST(RecordingLoaderTest, RandomCorruptionNeverCrashes) {
  TempDir dir;
  const std::string path = RecordingBundlePath(dir.path, 4);
  RecordingManifest m;
  m.rank = 4;
  RecordingWriter writer;
  ASSERT_TRUE(writer.Open(path, m));
  Pcg32 rng(21, 7);
  for (int i = 0; i < 20; ++i) writer.FrameIn(RandomFrame(rng));
  writer.Close();

  std::ifstream in(path, std::ios::binary);
  std::vector<char> bytes{std::istreambuf_iterator<char>(in),
                          std::istreambuf_iterator<char>()};
  const std::string mut_path = dir.path + "/mut.sjrec";
  Pcg32 mut_rng(31, 17);
  const int iters = FuzzIters(256);
  for (int i = 0; i < iters; ++i) {
    std::vector<char> mutated = bytes;
    const std::size_t at =
        mut_rng.NextBounded(static_cast<std::uint32_t>(mutated.size()));
    mutated[at] = static_cast<char>(mutated[at] ^
                                    (1 << mut_rng.NextBounded(8)));
    {
      std::ofstream out(mut_path, std::ios::binary | std::ios::trunc);
      out.write(mutated.data(), static_cast<std::streamsize>(mutated.size()));
    }
    LoadRecordingResult res = LoadRecording(mut_path);  // must not crash
    (void)res;
  }
}

}  // namespace
}  // namespace sjoin::obs
