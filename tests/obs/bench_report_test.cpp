// BenchReport JSON round-trip, schema validation, and the committed golden
// file (tests/testdata/bench_report_golden.json): the serializer must be
// byte-stable, or archived baselines would churn on every run.
#include "obs/bench_report.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "obs/json.h"

namespace sjoin::obs {
namespace {

BenchReport MakeReport() {
  BenchReport r;
  r.bench_id = "fig99_example";
  r.figure = "Fig 99";
  r.title = "example bench";
  r.paper_shape = "goes up, with a \"knee\"";
  r.mode = "quick";
  r.deterministic = true;
  r.warmup_s = 75;
  r.measure_s = 45;
  r.config = "slaves=2 W=60s lambda=1500t/s";
  r.columns = {"rate", "policy", "delay_s"};
  r.rows = {
      {BenchCell::Num(1000), BenchCell::Text("static"), BenchCell::Num(0.25)},
      {BenchCell::Num(2000), BenchCell::Text("adaptive"),
       BenchCell::Num(1.75)},
  };
  r.counters = {{"sim_tuples_generated", 123456},
                {"join_tuning_moves", 17}};
  WallStageSummary ws;
  ws.stage = "distribute";
  ws.count = 42;
  ws.p50_us = 7.5;
  ws.p95_us = 31.25;
  r.wall_stages = {ws};
  return r;
}

TEST(BenchReportTest, RoundTripPreservesEveryField) {
  BenchReport r = MakeReport();
  std::string json = r.ToJson();

  BenchReport back;
  std::string err;
  ASSERT_TRUE(ParseBenchReport(json, &back, &err)) << err;
  EXPECT_EQ(back.bench_id, r.bench_id);
  EXPECT_EQ(back.figure, r.figure);
  EXPECT_EQ(back.title, r.title);
  EXPECT_EQ(back.paper_shape, r.paper_shape);
  EXPECT_EQ(back.mode, r.mode);
  EXPECT_EQ(back.deterministic, r.deterministic);
  EXPECT_EQ(back.warmup_s, r.warmup_s);
  EXPECT_EQ(back.measure_s, r.measure_s);
  EXPECT_EQ(back.config, r.config);
  EXPECT_EQ(back.columns, r.columns);
  EXPECT_EQ(back.rows, r.rows);
  EXPECT_EQ(back.counters, r.counters);
  ASSERT_EQ(back.wall_stages.size(), 1u);
  EXPECT_EQ(back.wall_stages[0].stage, "distribute");
  EXPECT_EQ(back.wall_stages[0].count, 42u);
  EXPECT_EQ(back.wall_stages[0].p50_us, 7.5);
  EXPECT_EQ(back.wall_stages[0].p95_us, 31.25);

  // Serialization is deterministic: a second pass is byte-identical.
  EXPECT_EQ(back.ToJson(), json);
}

TEST(BenchReportTest, GoldenFileParsesAndReserializesByteIdentical) {
  const std::string path =
      std::string(SJOIN_TESTDATA_DIR) + "/bench_report_golden.json";
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in) << "missing " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string golden = buf.str();

  BenchReport r;
  std::string err;
  ASSERT_TRUE(ParseBenchReport(golden, &r, &err)) << err;
  EXPECT_EQ(r.bench_id, "fig99_example");
  EXPECT_EQ(r.mode, "quick");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_TRUE(r.rows[1][1].is_text);
  EXPECT_EQ(r.rows[1][1].text, "adaptive");

  // The committed file is exactly what ToJson emits today. If this fails,
  // the serializer changed format: bump the schema version and regenerate
  // the golden (and any archived baselines).
  EXPECT_EQ(r.ToJson(), golden);
}

TEST(BenchReportTest, RejectsSchemaViolations) {
  BenchReport r = MakeReport();
  BenchReport out;
  std::string err;

  std::string json = r.ToJson();
  std::string bad = json;
  bad.replace(bad.find("sjoin-bench-report"), 18, "sjoin-bench-rep0rt");
  EXPECT_FALSE(ParseBenchReport(bad, &out, &err));

  bad = json;
  bad.replace(bad.find("\"quick\""), 7, "\"fast\"");
  err.clear();  // the parser reports the first error only
  EXPECT_FALSE(ParseBenchReport(bad, &out, &err));
  EXPECT_NE(err.find("mode"), std::string::npos) << err;

  // Ragged row: drop one cell from the second row.
  BenchReport ragged = MakeReport();
  ragged.rows[1].pop_back();
  EXPECT_FALSE(ParseBenchReport(ragged.ToJson(), &out, &err));

  EXPECT_FALSE(ParseBenchReport("{]", &out, &err));
  EXPECT_FALSE(ParseBenchReport("[1, 2]", &out, &err));
}

TEST(BenchSuiteTest, RoundTripAndModeConsistency) {
  BenchSuite s;
  s.mode = "quick";
  s.benches = {MakeReport()};
  std::string json = s.ToJson();

  BenchSuite back;
  std::string err;
  ASSERT_TRUE(ParseBenchSuite(json, &back, &err)) << err;
  EXPECT_EQ(back.mode, "quick");
  ASSERT_EQ(back.benches.size(), 1u);
  EXPECT_EQ(back.benches[0].rows, s.benches[0].rows);
  EXPECT_EQ(back.ToJson(), json);

  // A report whose mode disagrees with the suite is rejected.
  BenchSuite mixed = s;
  mixed.mode = "full";
  err.clear();
  EXPECT_FALSE(ParseBenchSuite(mixed.ToJson(), &back, &err));
  EXPECT_NE(err.find("mode"), std::string::npos) << err;

  // Duplicate bench ids are rejected (merging the same bench twice).
  BenchSuite dup = s;
  dup.benches.push_back(MakeReport());
  err.clear();
  EXPECT_FALSE(ParseBenchSuite(dup.ToJson(), &back, &err));
  EXPECT_NE(err.find("duplicate"), std::string::npos) << err;
}

TEST(BenchReportTest, KnownBenchIdsCoverTheSuite) {
  std::vector<std::string> ids = KnownBenchIds();
  EXPECT_EQ(ids.size(), 26u);
  for (const char* expected :
       {"fig05_delay_small", "table1_defaults", "micro_benchmarks",
        "ext_recovery_overhead", "ext_worker_scaling",
        "ext_elastic_scaling", "ext_delay_telemetry",
        "ext_record_replay", "ext_wall_throughput"}) {
    bool found = false;
    for (const std::string& id : ids) found = found || id == expected;
    EXPECT_TRUE(found) << expected;
  }
}

TEST(JsonNumberTest, IntegersAndDoublesRoundTrip) {
  EXPECT_EQ(JsonNumber(0), "0");
  EXPECT_EQ(JsonNumber(123456), "123456");
  EXPECT_EQ(JsonNumber(-42), "-42");
  // Doubles re-parse to the exact same value (shortest-precision probing).
  for (double d : {0.25, 1.0 / 3.0, 3.846567, 1e-9, 6.02e23}) {
    JsonValue v;
    std::string err;
    ASSERT_TRUE(ParseJson(JsonNumber(d), &v, &err)) << err;
    EXPECT_EQ(v.number, d);
  }
}

}  // namespace
}  // namespace sjoin::obs
