#include "obs/recorder.h"

#include <gtest/gtest.h>

#include <string>

namespace sjoin::obs {
namespace {

TEST(EpochRecorderTest, SnapshotCapturesStableFamiliesOnly) {
  MetricsRegistry reg;
  reg.GetCounter("tuples").Add(10);
  reg.GetGauge("occ").Set(0.5);
  reg.GetHistogram("delay", {100.0}).Observe(5.0);
  reg.GetCounter("net_bytes", {}, Stability::kVolatile).Add(999);

  EpochRecorder rec;
  rec.Snapshot(0, 0, reg);
  ASSERT_FALSE(rec.Empty());
  const EpochRow& row = rec.Back();
  EXPECT_EQ(row.epoch, 0);
  ASSERT_TRUE(row.cells.count("tuples"));
  EXPECT_EQ(row.cells.at("tuples").i, 10);
  ASSERT_TRUE(row.cells.count("occ"));
  EXPECT_DOUBLE_EQ(row.cells.at("occ").d, 0.5);
  EXPECT_TRUE(row.cells.count("delay.count"));
  EXPECT_FALSE(row.cells.count("net_bytes"));  // volatile excluded
}

TEST(EpochRecorderTest, RowsAreCumulativePerEpoch) {
  MetricsRegistry reg;
  Counter& c = reg.GetCounter("tuples");
  EpochRecorder rec;
  c.Add(5);
  rec.Snapshot(0, 0, reg);
  c.Add(7);
  rec.Snapshot(1, 1000, reg);
  ASSERT_EQ(rec.Rows().size(), 2u);
  EXPECT_EQ(rec.Rows()[0].cells.at("tuples").i, 5);
  EXPECT_EQ(rec.Rows()[1].cells.at("tuples").i, 12);
  EXPECT_EQ(rec.Rows()[1].vt, 1000);
}

TEST(EpochRecorderTest, ExplicitCellsMergeIntoRow) {
  MetricsRegistry reg;
  EpochRecorder rec;
  rec.Snapshot(3, 300, reg);
  rec.SetInt(3, 300, "active_slaves", 4);
  rec.SetDouble(3, 300, "spread", 0.125);
  ASSERT_EQ(rec.Rows().size(), 1u);  // same epoch -> same row
  EXPECT_EQ(rec.Back().cells.at("active_slaves").i, 4);
  EXPECT_DOUBLE_EQ(rec.Back().cells.at("spread").d, 0.125);
}

TEST(EpochRecorderTest, RingDropsOldestBeyondCapacity) {
  MetricsRegistry reg;
  EpochRecorder rec(/*capacity=*/3);
  for (int e = 0; e < 5; ++e) rec.Snapshot(e, e * 10, reg);
  ASSERT_EQ(rec.Rows().size(), 3u);
  EXPECT_EQ(rec.Rows().front().epoch, 2);
  EXPECT_EQ(rec.Back().epoch, 4);
}

TEST(EpochRecorderTest, CsvHasUnionHeaderAndEmptyMissingCells) {
  EpochRecorder rec;
  rec.SetInt(0, 0, "a", 1);
  rec.SetInt(1, 10, "b", 2);
  std::string csv = rec.ExportCsv();
  EXPECT_EQ(csv,
            "epoch,vt_us,a,b\n"
            "0,0,1,\n"
            "1,10,,2\n");
}

TEST(EpochRecorderTest, JsonlSortsKeysAndFormatsTypes) {
  EpochRecorder rec;
  rec.SetDouble(2, 20, "occ", 0.5);
  rec.SetInt(2, 20, "n", 7);
  std::string jsonl = rec.ExportJsonl();
  // std::map cell storage gives sorted keys; ints stay ints, doubles get
  // fixed 6-digit precision.
  EXPECT_EQ(jsonl, "{\"epoch\":2,\"vt_us\":20,\"n\":7,\"occ\":0.500000}\n");
}

TEST(EpochRecorderTest, ExportsAreDeterministic) {
  auto build = [] {
    MetricsRegistry reg;
    reg.GetCounter("c").Add(3);
    EpochRecorder rec;
    rec.Snapshot(0, 0, reg);
    rec.SetInt(0, 0, "x", 1);
    rec.Snapshot(1, 100, reg);
    return rec.ExportCsv() + "|" + rec.ExportJsonl();
  };
  EXPECT_EQ(build(), build());
}

}  // namespace
}  // namespace sjoin::obs
