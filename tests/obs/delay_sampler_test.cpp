#include "obs/delay_sampler.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "obs/cluster_view.h"

namespace sjoin::obs {
namespace {

Rec Probe(Time ts, std::uint64_t key) {
  Rec r;
  r.ts = ts;
  r.key = key;
  r.stream = 0;
  return r;
}

/// Serializes every tuple_delay_us family of `reg`: labels, total, buckets.
std::string Digest(const MetricsRegistry& reg) {
  std::ostringstream out;
  for (const MetricSample& s : CollectSamples(reg, false)) {
    if (s.name != "tuple_delay_us") continue;
    out << '{' << s.labels << "} total=" << s.hist_total << " (";
    for (std::uint64_t c : s.hist_counts) out << c << ' ';
    out << ")\n";
  }
  return out.str();
}

TEST(DelaySamplerTest, RateZeroDisablesSampling) {
  MetricsRegistry reg;
  DelaySampleSink sink(&reg, 1, 0, 8);
  sink.SetLogicalNow(1000);
  const Time partners[] = {5};
  for (int i = 0; i < 100; ++i) {
    sink.OnMatches(Probe(Time(i), std::uint64_t(i)), partners, 999);
  }
  EXPECT_TRUE(Digest(reg).empty());
}

TEST(DelaySamplerTest, RateOneSamplesEveryProbeOnLogicalTimeline) {
  MetricsRegistry reg;
  DelaySampleSink sink(&reg, 1, 1, 1);  // one partition: one histogram
  sink.SetLogicalNow(10 * kUsPerMs);
  const Time partners[] = {5};
  // `produced_at` is a wall instant and must be ignored: pass garbage.
  sink.OnMatches(Probe(4 * kUsPerMs, 7), partners, /*produced_at=*/999999);
  sink.OnMatches(Probe(9 * kUsPerMs, 8), partners, /*produced_at=*/0);
  // A probe "ahead" of the logical frontier clamps to zero delay.
  sink.OnMatches(Probe(20 * kUsPerMs, 9), partners, /*produced_at=*/1);
  const std::vector<MetricSample> samples = CollectSamples(reg, false);
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_EQ(samples[0].name, "tuple_delay_us");
  EXPECT_EQ(samples[0].labels, "pid=0");
  EXPECT_EQ(samples[0].hist_total, 3u);
}

// The sampling decision is a pure function of (key, ts, seed): feeding the
// same probes in a different order -- as racing worker threads would --
// must land the exact same tuples in the exact same buckets.
TEST(DelaySamplerTest, SampleSetIsOrderIndependent) {
  std::vector<Rec> probes;
  for (int i = 0; i < 2000; ++i) {
    probes.push_back(Probe(Time(i) * 37 + 1, std::uint64_t(i * 13 % 101)));
  }
  std::vector<Rec> shuffled = probes;
  std::mt19937 rng(42);
  std::shuffle(shuffled.begin(), shuffled.end(), rng);

  const Time partners[] = {5, 6};
  MetricsRegistry ra;
  MetricsRegistry rb;
  DelaySampleSink sa(&ra, /*seed=*/97, /*rate=*/16, /*num_partitions=*/24);
  DelaySampleSink sb(&rb, /*seed=*/97, /*rate=*/16, /*num_partitions=*/24);
  sa.SetLogicalNow(100 * kUsPerMs);
  sb.SetLogicalNow(100 * kUsPerMs);
  for (const Rec& p : probes) sa.OnMatches(p, partners, 0);
  for (const Rec& p : shuffled) sb.OnMatches(p, partners, 0);

  const std::string da = Digest(ra);
  ASSERT_FALSE(da.empty());
  EXPECT_EQ(da, Digest(rb));
}

// Different seeds select different sample subsets (the knob is real), yet
// each subset is itself deterministic.
TEST(DelaySamplerTest, SeedSelectsTheSubset) {
  const Time partners[] = {5};
  MetricsRegistry ra;
  MetricsRegistry rb;
  DelaySampleSink sa(&ra, /*seed=*/1, /*rate=*/8, /*num_partitions=*/4);
  DelaySampleSink sb(&rb, /*seed=*/2, /*rate=*/8, /*num_partitions=*/4);
  sa.SetLogicalNow(kUsPerSec);
  sb.SetLogicalNow(kUsPerSec);
  for (int i = 0; i < 4000; ++i) {
    const Rec p = Probe(Time(i) * 11 + 3, std::uint64_t(i));
    sa.OnMatches(p, partners, 0);
    sb.OnMatches(p, partners, 0);
  }
  EXPECT_NE(Digest(ra), Digest(rb));
}

}  // namespace
}  // namespace sjoin::obs
