#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "obs/cluster_view.h"

namespace sjoin::obs {
namespace {

TEST(MetricsRegistryTest, CounterHandleIsStableAndAccumulates) {
  MetricsRegistry reg;
  Counter& c = reg.GetCounter("tuples");
  c.Inc();
  c.Add(4);
  EXPECT_EQ(reg.CounterValue("tuples"), 5u);
  // Second lookup returns the same instance.
  EXPECT_EQ(&reg.GetCounter("tuples"), &c);
}

TEST(MetricsRegistryTest, LabelsSeparateInstances) {
  MetricsRegistry reg;
  reg.GetCounter("bytes", {{"peer", "1"}}).Add(10);
  reg.GetCounter("bytes", {{"peer", "2"}}).Add(20);
  EXPECT_EQ(reg.CounterValue("bytes", {{"peer", "1"}}), 10u);
  EXPECT_EQ(reg.CounterValue("bytes", {{"peer", "2"}}), 20u);
  EXPECT_EQ(reg.CounterValue("bytes"), 0u);  // unlabeled never registered
}

TEST(MetricsRegistryTest, CanonicalLabelsSortByKey) {
  EXPECT_EQ(CanonicalLabels({{"b", "2"}, {"a", "1"}}), "a=1,b=2");
  EXPECT_EQ(CanonicalLabels({}), "");
  // Order of registration does not matter: both spellings hit one instance.
  MetricsRegistry reg;
  reg.GetCounter("x", {{"b", "2"}, {"a", "1"}}).Inc();
  EXPECT_EQ(reg.CounterValue("x", {{"a", "1"}, {"b", "2"}}), 1u);
}

TEST(MetricsRegistryTest, GaugeLastWriteWins) {
  MetricsRegistry reg;
  Gauge& g = reg.GetGauge("occupancy");
  g.Set(0.25);
  g.Set(0.75);
  EXPECT_DOUBLE_EQ(reg.GaugeValue("occupancy"), 0.75);
}

TEST(MetricsRegistryTest, HistogramSnapshots) {
  MetricsRegistry reg;
  HistogramMetric& h = reg.GetHistogram("delay", {10.0, 100.0});
  h.Observe(5.0);
  h.Observe(50.0);
  h.Observe(5000.0);
  Histogram snap = h.Snapshot();
  EXPECT_EQ(snap.TotalCount(), 3u);
  EXPECT_EQ(snap.CountAt(0), 1u);
  EXPECT_EQ(snap.CountAt(1), 1u);
  EXPECT_EQ(snap.CountAt(2), 1u);
}

TEST(MetricsRegistryTest, CollectIsSortedByNameThenLabels) {
  MetricsRegistry reg;
  reg.GetCounter("zeta").Inc();
  reg.GetCounter("alpha", {{"k", "2"}}).Inc();
  reg.GetCounter("alpha", {{"k", "1"}}).Inc();
  reg.GetGauge("mid").Set(1.0);
  std::vector<SnapshotEntry> snap = reg.Collect();
  ASSERT_EQ(snap.size(), 4u);
  EXPECT_EQ(snap[0].name, "alpha");
  EXPECT_EQ(snap[0].labels, "k=1");
  EXPECT_EQ(snap[1].name, "alpha");
  EXPECT_EQ(snap[1].labels, "k=2");
  EXPECT_EQ(snap[2].name, "mid");
  EXPECT_EQ(snap[3].name, "zeta");
}

TEST(MetricsRegistryTest, VolatileFamiliesAreFilterable) {
  MetricsRegistry reg;
  reg.GetCounter("stable_c").Inc();
  reg.GetCounter("net_bytes", {}, Stability::kVolatile).Add(100);
  std::vector<SnapshotEntry> all = reg.Collect(/*include_volatile=*/true);
  std::vector<SnapshotEntry> stable = reg.Collect(/*include_volatile=*/false);
  EXPECT_EQ(all.size(), 2u);
  ASSERT_EQ(stable.size(), 1u);
  EXPECT_EQ(stable[0].name, "stable_c");
  // Same filter applies to the wire-able sample flattening.
  std::vector<MetricSample> samples = CollectSamples(reg, false);
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_EQ(samples[0].name, "stable_c");
  EXPECT_EQ(samples[0].counter, 1u);
}

TEST(MetricsRegistryTest, CollectSamplesCarriesHistogramBuckets) {
  MetricsRegistry reg;
  reg.GetCounter("c").Inc();
  HistogramMetric& h = reg.GetHistogram("h", {1.0, 2.0});
  h.Observe(0.5);
  h.Observe(1.5);
  h.Observe(99.0);
  std::vector<MetricSample> samples = CollectSamples(reg, true);
  ASSERT_EQ(samples.size(), 2u);
  EXPECT_EQ(samples[0].name, "c");
  const MetricSample& hs = samples[1];
  EXPECT_EQ(hs.name, "h");
  EXPECT_EQ(hs.kind, MetricKind::kHistogram);
  ASSERT_EQ(hs.hist_bounds.size(), 2u);
  ASSERT_EQ(hs.hist_counts.size(), 3u);  // bounds + overflow bucket
  EXPECT_EQ(hs.hist_counts[0], 1u);
  EXPECT_EQ(hs.hist_counts[1], 1u);
  EXPECT_EQ(hs.hist_counts[2], 1u);
  EXPECT_EQ(hs.hist_total, 3u);
}

TEST(MetricsRegistryTest, ConcurrentBumpsAreLossless) {
  MetricsRegistry reg;
  Counter& c = reg.GetCounter("hot");
  constexpr int kThreads = 8;
  constexpr int kBumps = 10000;
  std::vector<std::thread> ts;
  for (int i = 0; i < kThreads; ++i) {
    ts.emplace_back([&c] {
      for (int j = 0; j < kBumps; ++j) c.Inc();
    });
  }
  for (std::thread& t : ts) t.join();
  EXPECT_EQ(c.Value(), static_cast<std::uint64_t>(kThreads) * kBumps);
}

TEST(ClusterMetricsViewTest, KeyedByStampNotArrival) {
  ClusterMetricsView view;
  // Epoch 7 arrives before epoch 6 (reordered in flight): both retrievable
  // under their own stamps.
  view.Record(3, 7, {{"tuples", "", MetricKind::kCounter, 70, 0.0}});
  view.Record(3, 6, {{"tuples", "", MetricKind::kCounter, 60, 0.0}});
  EXPECT_EQ(view.CounterAt(3, 6, "tuples"), 60u);
  EXPECT_EQ(view.CounterAt(3, 7, "tuples"), 70u);
  EXPECT_EQ(view.LatestEpoch(3), 7);
  EXPECT_EQ(view.CounterAt(3, 5, "tuples"), 0u);  // absent -> 0
  EXPECT_EQ(view.Get(2, 6), nullptr);
  EXPECT_EQ(view.FrameCount(), 2u);
  std::vector<std::int64_t> epochs = view.Epochs(3);
  ASSERT_EQ(epochs.size(), 2u);
  EXPECT_EQ(epochs[0], 6);
  EXPECT_EQ(epochs[1], 7);
}

TEST(ClusterMetricsViewTest, DuplicateFrameIsIdempotent) {
  ClusterMetricsView view;
  std::vector<MetricSample> frame{{"c", "", MetricKind::kCounter, 5, 0.0}};
  view.Record(1, 2, frame);
  view.Record(1, 2, frame);  // duplicated kMetrics delivery
  EXPECT_EQ(view.FrameCount(), 1u);
  EXPECT_EQ(view.CounterAt(1, 2, "c"), 5u);
}

TEST(ClusterMetricsViewTest, CsvExportIsDeterministic) {
  auto build = [] {
    ClusterMetricsView view;
    view.Record(2, 1,
                {{"a", "", MetricKind::kCounter, 1, 0.0},
                 {"g", "", MetricKind::kGauge, 0, 0.5}});
    view.Record(1, 1, {{"a", "", MetricKind::kCounter, 2, 0.0}});
    return view.ExportCsv();
  };
  std::string csv = build();
  EXPECT_EQ(csv, build());
  EXPECT_NE(csv.find("a"), std::string::npos);
}

}  // namespace
}  // namespace sjoin::obs
