// Wall-clock stage profiler: kWall exclusion from every deterministic export
// path, RAII timer behavior, stage summaries, and the end-to-end guarantee
// that instrumented SimDriver runs stay byte-identical under a fixed seed.
#include "obs/profiler.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/sim_driver.h"
#include "obs/obs.h"
#include "obs/recorder.h"

namespace sjoin::obs {
namespace {

TEST(ProfilerTest, WallStageIsTaggedKWallAndExcludedFromStableCollect) {
  MetricsRegistry reg;
  WallStage(reg, kStageDistribute).Observe(12.0);
  reg.GetCounter("tuples").Inc();

  // Stable collect: the counter only.
  std::vector<SnapshotEntry> stable = reg.Collect(/*include_volatile=*/false);
  ASSERT_EQ(stable.size(), 1u);
  EXPECT_EQ(stable[0].name, "tuples");

  // Full collect: the wall histogram appears, tagged kWall (not kVolatile).
  bool found = false;
  for (const SnapshotEntry& e : reg.Collect(/*include_volatile=*/true)) {
    if (e.name == kWallStageMetric) {
      found = true;
      EXPECT_EQ(e.stability, Stability::kWall);
      EXPECT_EQ(e.kind, MetricKind::kHistogram);
      EXPECT_EQ(e.labels, "stage=distribute");
      EXPECT_EQ(e.hist_total, 1u);
    }
  }
  EXPECT_TRUE(found);
}

TEST(ProfilerTest, RecorderAndWireSamplesNeverSeeWallStages) {
  MetricsRegistry reg;
  WallStage(reg, kStageNetSend).Observe(3.5);
  reg.GetCounter("tuples").Add(7);

  EpochRecorder rec;
  rec.Snapshot(0, 0, reg);
  const std::string csv = rec.ExportCsv();
  EXPECT_EQ(csv.find("wall_stage"), std::string::npos) << csv;
  EXPECT_NE(csv.find("tuples"), std::string::npos);

  // kMetrics frames collect with include_volatile=false as well.
  for (const MetricSample& s : CollectSamples(reg, false)) {
    EXPECT_EQ(s.name.find("wall_stage"), std::string::npos) << s.name;
  }
}

TEST(ProfilerTest, ScopedTimerObservesAndNullIsSafe) {
  MetricsRegistry reg;
  HistogramMetric& h = WallStage(reg, kStageCkptSnapshot);
  {
    ScopedTimer t(&h);
  }
  {
    ScopedTimer off(nullptr);  // disabled site: must not crash
  }
  EXPECT_EQ(h.Snapshot().TotalCount(), 1u);
}

TEST(ProfilerTest, SummarizeWallStagesSortsAndOmitsEmpty) {
  MetricsRegistry reg;
  WallStage(reg, kStageProbeInsert);  // registered but never observed
  HistogramMetric& dist = WallStage(reg, kStageDistribute);
  HistogramMetric& enc = WallStage(reg, kStageCodecEncode);
  for (int i = 0; i < 20; ++i) dist.Observe(10.0);
  dist.Observe(9000.0);  // one slow outlier
  enc.Observe(2.0);

  std::vector<WallStageSummary> ws = SummarizeWallStages(reg);
  ASSERT_EQ(ws.size(), 2u);  // probe_insert omitted
  EXPECT_EQ(ws[0].stage, "codec_encode");
  EXPECT_EQ(ws[1].stage, "distribute");
  EXPECT_EQ(ws[1].count, 21u);
  EXPECT_LE(ws[1].p50_us, ws[1].p95_us);
  EXPECT_GT(ws[1].p95_us, 0.0);

  const std::string line = FormatWallStages(ws);
  EXPECT_NE(line.find("stage=distribute"), std::string::npos) << line;
  EXPECT_NE(line.find("count=21"), std::string::npos) << line;
  EXPECT_EQ(FormatWallStages({}), "-");
}

TEST(ProfilerTest, AppendWallStageSamplesEmitsLabeledGauges) {
  MetricsRegistry reg;
  WallStage(reg, kStageDistribute).Observe(5.0);
  WallStage(reg, kStageDistribute).Observe(15.0);

  std::vector<MetricSample> samples;
  AppendWallStageSamples(reg, &samples);
  bool count = false, p50 = false, p95 = false;
  for (const MetricSample& s : samples) {
    EXPECT_EQ(s.labels, "stage=distribute");
    if (s.name == "wall_stage_count") {
      count = true;
      EXPECT_EQ(s.kind, MetricKind::kCounter);
      EXPECT_EQ(s.counter, 2u);
    } else if (s.name == "wall_stage_p50_us") {
      p50 = true;
      EXPECT_EQ(s.kind, MetricKind::kGauge);
    } else if (s.name == "wall_stage_p95_us") {
      p95 = true;
    }
  }
  EXPECT_TRUE(count && p50 && p95);
}

// The profiler's whole contract: real instrumented runs remain byte-identical
// under a fixed seed, because wall data never reaches the recorder.
TEST(ProfilerTest, SameSeedRunsExportIdenticalRecorderBytes) {
  SystemConfig cfg;
  cfg.num_slaves = 2;
  cfg.join.window = 2 * kUsPerSec;
  cfg.join.num_partitions = 8;
  cfg.epoch.t_dist = 500 * kUsPerMs;
  cfg.epoch.t_rep = 2 * kUsPerSec;
  cfg.workload.lambda = 200.0;
  cfg.workload.key_domain = 500;
  cfg.workload.seed = 777;

  auto run = [&](NodeObs* ob) {
    SimOptions opts;
    opts.warmup = 2 * kUsPerSec;
    opts.measure = 6 * kUsPerSec;
    opts.obs = ob;
    SimDriver(cfg, opts).Run();
  };
  NodeObs a, b;
  run(&a);
  run(&b);

  const std::string csv_a = a.recorder.ExportCsv();
  EXPECT_FALSE(csv_a.empty());
  EXPECT_EQ(csv_a, b.recorder.ExportCsv());
  EXPECT_EQ(a.recorder.ExportJsonl(), b.recorder.ExportJsonl());
  EXPECT_EQ(csv_a.find("wall_stage"), std::string::npos);

  // The wall stages themselves did fire (timings differ run to run; only
  // their presence is asserted).
  std::vector<WallStageSummary> ws = SummarizeWallStages(a.registry);
  bool saw_distribute = false;
  for (const WallStageSummary& w : ws) {
    saw_distribute = saw_distribute || w.stage == "distribute";
  }
  EXPECT_TRUE(saw_distribute);
}

}  // namespace
}  // namespace sjoin::obs
