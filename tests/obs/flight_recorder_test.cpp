#include "obs/flight_recorder.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

namespace sjoin::obs {
namespace {

TEST(FlightRecorderTest, KeepsEverythingBelowCapacity) {
  FlightRecorder fr(8);
  EXPECT_EQ(fr.Capacity(), 8u);
  fr.Record(10, "epoch", "epoch=1");
  fr.Record(20, "epoch", "epoch=2");
  ASSERT_EQ(fr.Events().size(), 2u);
  EXPECT_EQ(fr.TotalRecorded(), 2u);
  const std::vector<FlightEvent> ev = fr.Events();
  EXPECT_EQ(ev[0].vt, 10);
  EXPECT_EQ(ev[0].seq, 0u);
  EXPECT_EQ(ev[0].kind, "epoch");
  EXPECT_EQ(ev[0].detail, "epoch=1");
  EXPECT_EQ(ev[1].seq, 1u);
}

TEST(FlightRecorderTest, RingWrapsKeepingNewestOldestFirst) {
  FlightRecorder fr(4);
  for (int i = 0; i < 11; ++i) {
    fr.Record(Time(i) * 100, "ev", "n=" + std::to_string(i));
  }
  EXPECT_EQ(fr.TotalRecorded(), 11u);
  const std::vector<FlightEvent> ev = fr.Events();
  ASSERT_EQ(ev.size(), 4u);
  // The four newest survive, oldest of them first, seq preserved.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(ev[i].seq, 7u + i);
    EXPECT_EQ(ev[i].detail, "n=" + std::to_string(7 + i));
    EXPECT_EQ(ev[i].vt, Time(7 + i) * 100);
  }
}

// Wraparound boundaries: exactly-full keeps everything; each of the next
// events evicts exactly one; a second full revolution (2N, 2N+1) keeps the
// seq window sliding with no gaps or duplicates.
TEST(FlightRecorderTest, WrapBoundariesAtExactMultiplesOfCapacity) {
  static constexpr std::size_t kCap = 5;
  FlightRecorder fr(kCap);
  auto expect_window = [&fr](std::uint64_t total) {
    const std::vector<FlightEvent> ev = fr.Events();
    const std::size_t want = std::min<std::uint64_t>(total, kCap);
    ASSERT_EQ(ev.size(), want);
    EXPECT_EQ(fr.TotalRecorded(), total);
    // The retained window is the `want` newest, oldest first, contiguous.
    const std::uint64_t first = total - want;
    for (std::size_t i = 0; i < want; ++i) {
      EXPECT_EQ(ev[i].seq, first + i);
      EXPECT_EQ(ev[i].detail, "n=" + std::to_string(first + i));
    }
  };

  std::uint64_t recorded = 0;
  auto fill_to = [&](std::uint64_t total) {
    while (recorded < total) {
      fr.Record(Time(recorded), "ev", "n=" + std::to_string(recorded));
      ++recorded;
    }
  };

  fill_to(kCap);  // exactly full: nothing dropped yet
  expect_window(kCap);
  fill_to(kCap + 1);  // first eviction
  expect_window(kCap + 1);
  fill_to(2 * kCap);  // head back at slot 0
  expect_window(2 * kCap);
  fill_to(2 * kCap + 1);  // second revolution's first eviction
  expect_window(2 * kCap + 1);
}

// The ring is a shared per-process sink appended from the runner's protocol
// paths (comm thread, worker pool, policy loop) while dumps may run
// concurrently. Hammer it from several writers with interleaved reads: no
// lost updates (TotalRecorded is exact), and the surviving window is always
// `capacity` events with distinct seqs. Run under TSan this also proves the
// locking is sound.
TEST(FlightRecorderTest, ConcurrentWritersLoseNothingAndKeepSeqsDistinct) {
  static constexpr std::size_t kCap = 32;
  constexpr int kWriters = 4;
  constexpr int kPerWriter = 2000;
  FlightRecorder fr(kCap);

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&fr, w] {
      for (int i = 0; i < kPerWriter; ++i) {
        fr.Record(Time(i), "w" + std::to_string(w), "n=" + std::to_string(i));
      }
    });
  }
  // Interleaved reader: snapshots must always be internally consistent.
  std::thread reader([&fr] {
    for (int i = 0; i < 200; ++i) {
      const std::vector<FlightEvent> ev = fr.Events();
      ASSERT_LE(ev.size(), kCap);
      for (std::size_t j = 1; j < ev.size(); ++j) {
        ASSERT_LT(ev[j - 1].seq, ev[j].seq);  // oldest first, strictly
      }
      (void)fr.Dump();
    }
  });
  for (std::thread& t : writers) t.join();
  reader.join();

  EXPECT_EQ(fr.TotalRecorded(),
            static_cast<std::uint64_t>(kWriters) * kPerWriter);
  const std::vector<FlightEvent> ev = fr.Events();
  ASSERT_EQ(ev.size(), kCap);
  std::set<std::uint64_t> seqs;
  for (const FlightEvent& e : ev) seqs.insert(e.seq);
  EXPECT_EQ(seqs.size(), kCap);  // distinct
  // The window is the newest kCap seqs of the whole run.
  EXPECT_EQ(*seqs.rbegin(),
            static_cast<std::uint64_t>(kWriters) * kPerWriter - 1);
  EXPECT_EQ(*seqs.begin(),
            static_cast<std::uint64_t>(kWriters) * kPerWriter - kCap);
}

TEST(FlightRecorderTest, SetCapacityResetsTheRing) {
  FlightRecorder fr(2);
  fr.Record(1, "a");
  fr.Record(2, "b");
  fr.SetCapacity(16);
  EXPECT_EQ(fr.Capacity(), 16u);
  EXPECT_TRUE(fr.Events().empty());
  fr.Record(3, "c");
  ASSERT_EQ(fr.Events().size(), 1u);
  EXPECT_EQ(fr.Events()[0].kind, "c");
}

TEST(FlightRecorderTest, DumpFormatsEventsAndDropCount) {
  FlightRecorder fr(2);
  fr.Record(5, "member_join", "slave=3");
  fr.Record(7, "failover", "pid=4 target=2");
  fr.Record(9, "epoch", "epoch=12");  // evicts the oldest
  const std::string dump = fr.Dump();
  // Header names the drop count; the dropped event's line is gone.
  EXPECT_NE(dump.find("2 events retained, 1 dropped"), std::string::npos);
  EXPECT_EQ(dump.find("member_join"), std::string::npos);
  EXPECT_NE(dump.find("vt=7 seq=1 failover pid=4 target=2"),
            std::string::npos);
  EXPECT_NE(dump.find("vt=9 seq=2 epoch epoch=12"), std::string::npos);
  // Oldest first: the failover line precedes the epoch line.
  EXPECT_LT(dump.find("failover"), dump.find("epoch epoch=12"));
}

TEST(FlightRecorderTest, DumpToArtifactDirWritesFirstSetEnvVar) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() /
                       ("sjoin_flight_ut_" + std::to_string(::getpid()));
  fs::remove_all(dir);
  fs::create_directories(dir);
  static const char* const kEnvs[] = {"SJOIN_TEST_UNSET_ARTIFACT_DIR",
                                      "SJOIN_TEST_ARTIFACT_DIR", nullptr};
  ::unsetenv("SJOIN_TEST_UNSET_ARTIFACT_DIR");

  // No variable set: silently refuses, writes nothing.
  ::unsetenv("SJOIN_TEST_ARTIFACT_DIR");
  EXPECT_FALSE(DumpToArtifactDir(kEnvs, "ring.txt", "boom\n"));
  EXPECT_FALSE(fs::exists(dir / "ring.txt"));

  // Second variable set (first unset): the file lands there.
  ASSERT_EQ(::setenv("SJOIN_TEST_ARTIFACT_DIR", dir.c_str(), 1), 0);
  EXPECT_TRUE(DumpToArtifactDir(kEnvs, "ring.txt", "boom\n"));
  std::ifstream in(dir / "ring.txt", std::ios::binary);
  std::ostringstream got;
  got << in.rdbuf();
  EXPECT_EQ(got.str(), "boom\n");
  ::unsetenv("SJOIN_TEST_ARTIFACT_DIR");
  fs::remove_all(dir);
}

}  // namespace
}  // namespace sjoin::obs
