// bench_diff engine: structural checks, per-point tolerance bands, knee
// detection and shift gating, quick/full mode refusal.
#include "obs/bench_diff.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace sjoin::obs {
namespace {

BenchReport MakeBench(const std::string& id, std::vector<double> ys,
                      bool deterministic = true) {
  BenchReport r;
  r.bench_id = id;
  r.figure = "Fig T";
  r.title = "test";
  r.paper_shape = "test";
  r.mode = "quick";
  r.deterministic = deterministic;
  r.warmup_s = 1;
  r.measure_s = 1;
  r.config = "test";
  r.columns = {"rate", "delay_s"};
  double x = 1000;
  for (double y : ys) {
    r.rows.push_back({BenchCell::Num(x), BenchCell::Num(y)});
    x += 1000;
  }
  return r;
}

BenchSuite MakeSuite(std::vector<BenchReport> benches,
                     const std::string& mode = "quick") {
  BenchSuite s;
  s.mode = mode;
  s.benches = std::move(benches);
  return s;
}

TEST(KneeIndexTest, FindsTheFirstBlowupPoint) {
  // min = 1; knee = first y >= 5 * 1.
  EXPECT_EQ(KneeIndex({1, 1.2, 2, 5.5, 40}, 5.0), 3);
  // The scan is positional: any point >= factor*min knees, even before the
  // minimum (a curve that *starts* saturated is already past its knee).
  EXPECT_EQ(KneeIndex({10, 1, 2, 60}, 5.0), 0);
  EXPECT_EQ(KneeIndex({1, 2, 3, 4}, 5.0), -1);   // never blows up
  EXPECT_EQ(KneeIndex({2, 2, 2}, 5.0), -1);      // flat
  EXPECT_EQ(KneeIndex({}, 5.0), -1);
  // Zero/negative minimum: any positive point would trivially 'knee'; the
  // detector opts out and leaves gating to the per-point deltas.
  EXPECT_EQ(KneeIndex({0, 1, 2}, 5.0), -1);
}

TEST(BenchDiffTest, IdenticalSuitesPass) {
  BenchSuite s = MakeSuite({MakeBench("a", {1, 1, 2, 8})});
  DiffResult res = DiffBenchSuites(s, s);
  EXPECT_TRUE(res.ok());
  EXPECT_TRUE(res.regressions.empty());
}

TEST(BenchDiffTest, ToleranceEdges) {
  BenchSuite base = MakeSuite({MakeBench("a", {1.0, 1.0, 1.0})});
  DiffOptions opts;
  opts.tolerance = 0.25;

  // 24% off: inside the band.
  DiffResult ok =
      DiffBenchSuites(base, MakeSuite({MakeBench("a", {1.24, 1.0, 1.0})}),
                      opts);
  EXPECT_TRUE(ok.ok());

  // 26% off: outside.
  DiffResult bad =
      DiffBenchSuites(base, MakeSuite({MakeBench("a", {1.26, 1.0, 1.0})}),
                      opts);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.regressions[0].bench_id, "a");
  EXPECT_NE(bad.regressions[0].what.find("delay_s"), std::string::npos);
}

TEST(BenchDiffTest, AbsFloorKillsNearZeroNoise) {
  // 0.001 -> 0.012 is a 12x relative change, but against the 0.05 floor the
  // delta is 0.22 < 0.25: tiny absolute wiggles on near-zero baselines pass.
  BenchSuite base = MakeSuite({MakeBench("a", {0.001, 1.0})});
  BenchSuite cand = MakeSuite({MakeBench("a", {0.012, 1.0})});
  EXPECT_TRUE(DiffBenchSuites(base, cand).ok());
}

TEST(BenchDiffTest, EarlierKneeFailsEvenInsideTolerance) {
  // Baseline knee (factor 5, min 1) at index 3: 4.5 < 5 <= 10.
  BenchSuite base = MakeSuite({MakeBench("a", {1, 1, 4.5, 10})});
  // 4.5 -> 5.5 is a 22% delta (inside the band) but crosses 5*min: the knee
  // moves to index 2 -- the cluster saturates one load point earlier.
  BenchSuite cand = MakeSuite({MakeBench("a", {1, 1, 5.5, 10})});
  DiffResult res = DiffBenchSuites(base, cand);
  ASSERT_FALSE(res.ok());
  EXPECT_NE(res.regressions[0].what.find("knee"), std::string::npos)
      << res.regressions[0].what;

  // With one point of slack the same shift passes.
  DiffOptions slack;
  slack.knee_shift_allowed = 1;
  EXPECT_TRUE(DiffBenchSuites(base, cand, slack).ok());
}

TEST(BenchDiffTest, LaterKneeIsAnImprovementNote) {
  BenchSuite base = MakeSuite({MakeBench("a", {1, 1, 5.5, 10})});
  BenchSuite cand = MakeSuite({MakeBench("a", {1, 1, 4.5, 10})});
  DiffResult res = DiffBenchSuites(base, cand);
  EXPECT_TRUE(res.ok());
  EXPECT_FALSE(res.notes.empty());
}

TEST(BenchDiffTest, ModeMismatchIsRefused) {
  BenchSuite quick = MakeSuite({MakeBench("a", {1, 2})}, "quick");
  BenchSuite full = MakeSuite({MakeBench("a", {1, 2})}, "full");
  full.benches[0].mode = "full";
  DiffResult res = DiffBenchSuites(quick, full);
  ASSERT_FALSE(res.ok());
  EXPECT_NE(res.regressions[0].what.find("mode"), std::string::npos);
}

TEST(BenchDiffTest, NonDeterministicBenchesAreStructuralOnly) {
  BenchSuite base = MakeSuite({MakeBench("a", {1, 2, 3}, false)});
  // Wildly different numbers: fine, the bench is wall-clock.
  BenchSuite cand = MakeSuite({MakeBench("a", {100, 0.5, 9}, false)});
  EXPECT_TRUE(DiffBenchSuites(base, cand).ok());

  // But structure still gates: a dropped row fails.
  BenchSuite fewer = MakeSuite({MakeBench("a", {100, 0.5}, false)});
  EXPECT_FALSE(DiffBenchSuites(base, fewer).ok());
}

TEST(BenchDiffTest, StructuralChecks) {
  BenchSuite base = MakeSuite({MakeBench("a", {1, 2})});

  // Renamed column.
  BenchSuite renamed = MakeSuite({MakeBench("a", {1, 2})});
  renamed.benches[0].columns[1] = "latency_s";
  EXPECT_FALSE(DiffBenchSuites(base, renamed).ok());

  // Cell type flip (number -> text).
  BenchSuite flipped = MakeSuite({MakeBench("a", {1, 2})});
  flipped.benches[0].rows[0][1] = BenchCell::Text("n/a");
  EXPECT_FALSE(DiffBenchSuites(base, flipped).ok());

  // Missing bench is a regression; an extra bench is only a note.
  BenchSuite empty = MakeSuite({});
  EXPECT_FALSE(DiffBenchSuites(base, empty).ok());
  DiffResult extra = DiffBenchSuites(
      base, MakeSuite({MakeBench("a", {1, 2}), MakeBench("b", {3, 4})}));
  EXPECT_TRUE(extra.ok());
  EXPECT_FALSE(extra.notes.empty());
}

TEST(BenchDiffTest, TextCellsMustMatchExactly) {
  BenchReport b = MakeBench("a", {1});
  b.columns = {"policy", "delay_s"};
  b.rows = {{BenchCell::Text("static"), BenchCell::Num(1.0)}};
  BenchReport c = b;
  c.rows[0][0] = BenchCell::Text("adaptive");
  EXPECT_FALSE(DiffBenchSuites(MakeSuite({b}), MakeSuite({c})).ok());
}

}  // namespace
}  // namespace sjoin::obs
