#include "obs/trace.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/trace_check.h"

namespace sjoin::obs {
namespace {

TEST(TraceSinkTest, DisabledSinkRecordsNothing) {
  TraceSink sink;  // disabled by default
  sink.Complete("a", "c", 0, 10);
  sink.Instant("b", "c", 5);
  EXPECT_EQ(sink.EventCount(), 0u);
}

TEST(TraceSinkTest, EventsCarryRankAndEmissionSeq) {
  TraceSink sink(/*enabled=*/true);
  sink.SetRank(3);
  sink.Complete("join", "join", 100, 40, {{"tuples", 7}});
  sink.Instant("migrate", "reorg", 140);
  std::vector<TraceEvent> evs = sink.Events();
  ASSERT_EQ(evs.size(), 2u);
  EXPECT_EQ(evs[0].pid, 3u);
  EXPECT_EQ(evs[0].ph, 'X');
  EXPECT_EQ(evs[0].dur, 40);
  EXPECT_EQ(evs[0].seq, 0u);
  ASSERT_EQ(evs[0].args.size(), 1u);
  EXPECT_EQ(evs[0].args[0].first, "tuples");
  EXPECT_EQ(evs[0].args[0].second, 7);
  EXPECT_EQ(evs[1].seq, 1u);
  EXPECT_EQ(evs[1].ph, 'i');
}

TEST(TraceSinkTest, MergeSortsByTsThenPidThenSeq) {
  TraceSink a(true);
  a.SetRank(2);
  a.Instant("a0", "c", 50);
  a.Instant("a1", "c", 10);  // emitted later but earlier ts
  TraceSink b(true);
  b.SetRank(1);
  b.Instant("b0", "c", 50);
  std::vector<const TraceSink*> sinks{&a, &b};
  std::vector<TraceEvent> merged = MergeTraces(sinks);
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged[0].name, "a1");            // ts 10
  EXPECT_EQ(merged[1].name, "b0");            // ts 50, pid 1
  EXPECT_EQ(merged[2].name, "a0");            // ts 50, pid 2
}

TEST(TraceSinkTest, ChromeJsonRoundTripsThroughValidator) {
  TraceSink sink(true);
  sink.SetRank(0);
  sink.Begin("epoch", "epoch", 0, {{"epoch", 0}});
  sink.Instant("migrate", "reorg", 3, {{"pid", 9}, {"from", 1}, {"to", 2}});
  sink.End("epoch", "epoch", 1000);
  sink.Complete("distribute", "epoch", 1000, 0);
  std::vector<const TraceSink*> sinks{&sink};
  std::string json = ExportChromeJson(MergeTraces(sinks));
  TraceCheckResult res = ValidateChromeTrace(json);
  EXPECT_TRUE(res.ok) << res.error;
  EXPECT_EQ(res.events, 4);
  EXPECT_EQ(res.spans, 2);  // one X + one matched B/E
  EXPECT_EQ(res.instants, 1);
}

TEST(TraceSinkTest, ExportIsByteDeterministic) {
  auto build = [] {
    TraceSink sink(true);
    sink.SetRank(1);
    sink.Complete("join_batch", "join", 2000, 0, {{"epoch", 2}});
    sink.Instant("ckpt_segment", "repl", 2000, {{"pid", 4}});
    std::vector<const TraceSink*> sinks{&sink};
    return ExportChromeJson(MergeTraces(sinks));
  };
  EXPECT_EQ(build(), build());
}

TEST(TraceCheckTest, RejectsNonJson) {
  EXPECT_FALSE(ValidateChromeTrace("not json").ok);
  EXPECT_FALSE(ValidateChromeTrace("{\"a\":1}").ok);  // object, not array
}

TEST(TraceCheckTest, RejectsMissingRequiredFields) {
  // No ts.
  EXPECT_FALSE(
      ValidateChromeTrace("[{\"name\":\"x\",\"ph\":\"i\",\"pid\":0,\"tid\":0}]")
          .ok);
  // 'X' without dur.
  EXPECT_FALSE(ValidateChromeTrace("[{\"name\":\"x\",\"ph\":\"X\",\"ts\":1,"
                                   "\"pid\":0,\"tid\":0}]")
                   .ok);
}

TEST(TraceCheckTest, RejectsDecreasingTimestamps) {
  std::string json =
      "[{\"name\":\"a\",\"ph\":\"i\",\"ts\":10,\"pid\":0,\"tid\":0},"
      "{\"name\":\"b\",\"ph\":\"i\",\"ts\":5,\"pid\":0,\"tid\":0}]";
  TraceCheckResult res = ValidateChromeTrace(json);
  EXPECT_FALSE(res.ok);
}

TEST(TraceCheckTest, RejectsUnbalancedSpans) {
  // B without E.
  EXPECT_FALSE(ValidateChromeTrace("[{\"name\":\"epoch\",\"ph\":\"B\","
                                   "\"ts\":0,\"pid\":0,\"tid\":0}]")
                   .ok);
  // E with mismatched name.
  EXPECT_FALSE(ValidateChromeTrace(
                   "[{\"name\":\"epoch\",\"ph\":\"B\",\"ts\":0,\"pid\":0,"
                   "\"tid\":0},{\"name\":\"other\",\"ph\":\"E\",\"ts\":1,"
                   "\"pid\":0,\"tid\":0}]")
                   .ok);
  // E without any open span.
  EXPECT_FALSE(ValidateChromeTrace("[{\"name\":\"epoch\",\"ph\":\"E\","
                                   "\"ts\":0,\"pid\":0,\"tid\":0}]")
                   .ok);
}

TEST(TraceCheckTest, RejectsFailoverWithoutDeadSlaveVerdict) {
  std::string json =
      "[{\"name\":\"failover\",\"ph\":\"i\",\"ts\":10,\"pid\":0,\"tid\":0,"
      "\"args\":{\"slave\":2,\"pid\":7,\"replay_from\":3}}]";
  TraceCheckResult res = ValidateChromeTrace(json);
  EXPECT_FALSE(res.ok);
  EXPECT_NE(res.error.find("failover"), std::string::npos);
}

TEST(TraceCheckTest, AcceptsFailoverAfterVerdictAndBoundedAcks) {
  std::string json =
      "[{\"name\":\"dead_slave\",\"ph\":\"i\",\"ts\":5,\"pid\":0,\"tid\":0,"
      "\"args\":{\"slave\":2}},"
      "{\"name\":\"failover\",\"ph\":\"i\",\"ts\":10,\"pid\":0,\"tid\":0,"
      "\"args\":{\"slave\":2,\"pid\":7,\"replay_from\":3}},"
      "{\"name\":\"replay\",\"ph\":\"i\",\"ts\":11,\"pid\":0,\"tid\":0,"
      "\"args\":{\"slave\":2,\"epoch\":4,\"tuples\":8}},"
      "{\"name\":\"ckpt_sweep\",\"ph\":\"i\",\"ts\":12,\"pid\":0,\"tid\":0,"
      "\"args\":{\"epoch\":6}},"
      "{\"name\":\"ckpt_ack\",\"ph\":\"i\",\"ts\":13,\"pid\":0,\"tid\":0,"
      "\"args\":{\"slave\":1,\"pid\":3,\"covered_epoch\":6}}]";
  TraceCheckResult res = ValidateChromeTrace(json);
  EXPECT_TRUE(res.ok) << res.error;
  EXPECT_EQ(res.instants, 5);
}

TEST(TraceCheckTest, RejectsAckCoveringBeyondNewestSweep) {
  std::string json =
      "[{\"name\":\"ckpt_sweep\",\"ph\":\"i\",\"ts\":1,\"pid\":0,\"tid\":0,"
      "\"args\":{\"epoch\":4}},"
      "{\"name\":\"ckpt_ack\",\"ph\":\"i\",\"ts\":2,\"pid\":0,\"tid\":0,"
      "\"args\":{\"slave\":1,\"pid\":3,\"covered_epoch\":9}}]";
  EXPECT_FALSE(ValidateChromeTrace(json).ok);
}

TEST(TraceCheckTest, RejectsReplayOlderThanFailoverAsked) {
  std::string json =
      "[{\"name\":\"dead_slave\",\"ph\":\"i\",\"ts\":5,\"pid\":0,\"tid\":0,"
      "\"args\":{\"slave\":2}},"
      "{\"name\":\"failover\",\"ph\":\"i\",\"ts\":10,\"pid\":0,\"tid\":0,"
      "\"args\":{\"slave\":2,\"pid\":7,\"replay_from\":3}},"
      "{\"name\":\"replay\",\"ph\":\"i\",\"ts\":11,\"pid\":0,\"tid\":0,"
      "\"args\":{\"slave\":2,\"epoch\":1,\"tuples\":8}}]";
  EXPECT_FALSE(ValidateChromeTrace(json).ok);
}

}  // namespace
}  // namespace sjoin::obs
