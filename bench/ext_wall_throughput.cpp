// Extension: wall-clock throughput of one slave's ingest->join pipeline
// under the lock-free execution substrate (DESIGN.md "Wall-clock execution
// mode").
//
// Shape: a producer thread streams pre-generated tuple batches through a
// lock-free in-process hub (InProcHub MailboxMode::kLockFree -- the MPSC
// mailbox) to a consumer thread running a JoinModule over a WorkerPool;
// both ends synchronize their start on a spin flag and the consumer's
// drain-to-drain wall time yields tuples/sec. Batch payloads carry only an
// (offset, count) window into the shared pre-generated record vector, so
// the measurement is the handoff + join pass, not codec cost.
//
// Two modes:
//   * default (what bench_all / CI runs): a tiny structural sweep on the
//     condvar pool -- exercises the full pipeline and emits the bench-JSON
//     shape for bench_diff, but makes no performance claim;
//   * --wall (or SJOIN_BENCH_WALL=1): the pinned sweep -- spin-barrier
//     pools, workers x offered-rate grid, >= 5 reps per point, median and
//     p95 tuples/sec per row. Host-dependent by construction
//     (Deterministic(false)): bench_diff checks structure only. The
//     acceptance claim is monotonic median tuples/sec from workers=1 to 4
//     at unpaced offer on a >= 4-core host.
//
// Rate 0 means unpaced (producer pushes as fast as the mailbox accepts);
// a positive rate paces the producer to that offered tuples/sec, so the
// row reads as "does the pipeline keep up at this offer".
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/flags.h"
#include "common/lockfree.h"
#include "core/worker_pool.h"
#include "gen/stream_source.h"
#include "join/join_module.h"
#include "join/sink.h"
#include "net/inproc_transport.h"
#include "obs/quantiles.h"

namespace {

using namespace sjoin;

struct SweepPoint {
  std::uint32_t workers = 1;
  double offered_tps = 0.0;  // 0 = unpaced
};

struct RepResult {
  double tuples_per_sec = 0.0;
  std::uint64_t outputs = 0;
};

/// Encodes the batch window (offset, count) as the message payload.
std::vector<std::uint8_t> BatchPayload(std::uint32_t offset,
                                       std::uint32_t count) {
  std::vector<std::uint8_t> p(8);
  std::memcpy(p.data(), &offset, 4);
  std::memcpy(p.data() + 4, &count, 4);
  return p;
}

/// One measured repetition: producer -> lock-free hub -> consumer(JoinModule).
RepResult RunRep(const SystemConfig& cfg, const std::vector<Rec>& recs,
                 const SweepPoint& pt, std::size_t batch, bool wall) {
  using Clock = std::chrono::steady_clock;
  InProcHub hub(2, MailboxMode::kLockFree);
  auto producer_ep = hub.Endpoint(0);
  auto consumer_ep = hub.Endpoint(1);

  std::atomic<std::uint32_t> ready{0};
  std::atomic<bool> go{false};
  RepResult res;

  std::thread producer([&] {
    // Pin away from worker 0 (the consumer): the resolved CPU list wraps,
    // so on a small host this degrades gracefully to sharing.
    if (wall) PinWorkerCpu(pt.workers);
    ready.fetch_add(1);
    SpinWait spin;
    while (!go.load(std::memory_order_acquire)) spin.Pause();
    const auto start = Clock::now();
    std::size_t sent = 0;
    while (sent < recs.size()) {
      const std::uint32_t n =
          static_cast<std::uint32_t>(std::min(batch, recs.size() - sent));
      if (pt.offered_tps > 0.0) {
        // Pace to the offered rate: batch i is due at start + sent/rate.
        const auto due =
            start + std::chrono::microseconds(static_cast<std::int64_t>(
                        static_cast<double>(sent) / pt.offered_tps * 1e6));
        std::this_thread::sleep_until(due);
      }
      Message m;
      m.type = MsgType::kTupleBatch;
      m.payload = BatchPayload(static_cast<std::uint32_t>(sent), n);
      producer_ep->Send(1, std::move(m));
      sent += n;
    }
    Message done;
    done.type = MsgType::kShutdown;
    producer_ep->Send(1, std::move(done));
  });

  std::thread consumer([&] {
    SystemConfig rep_cfg = cfg;
    rep_cfg.slave.workers = pt.workers;
    rep_cfg.slave.wall_mode = wall;
    StatsSink sink;
    JoinModule jm(rep_cfg, &sink);
    WorkerPool pool(pt.workers, WorkerPoolOptions{wall, wall});
    if (wall) pool.PinCaller();
    jm.SetWorkerPool(&pool);
    constexpr Duration kDrain = 365LL * 24 * 3600 * kUsPerSec;

    ready.fetch_add(1);
    SpinWait spin;
    while (!go.load(std::memory_order_acquire)) spin.Pause();
    const auto start = Clock::now();
    std::uint64_t tuples = 0;
    while (true) {
      std::optional<Message> m = consumer_ep->Recv();
      if (!m.has_value() || m->type == MsgType::kShutdown) break;
      std::uint32_t offset = 0, count = 0;
      std::memcpy(&offset, m->payload.data(), 4);
      std::memcpy(&count, m->payload.data() + 4, 4);
      jm.EnqueueBatch(std::span<const Rec>(recs.data() + offset, count));
      (void)jm.ProcessFor(recs[offset].ts, kDrain);
      tuples += count;
    }
    const double secs =
        std::chrono::duration<double>(Clock::now() - start).count();
    res.tuples_per_sec = secs > 0.0 ? static_cast<double>(tuples) / secs : 0.0;
    res.outputs = jm.Outputs();
  });

  SpinWait spin;
  while (ready.load(std::memory_order_acquire) != 2) spin.Pause();
  go.store(true, std::memory_order_release);
  producer.join();
  consumer.join();
  hub.Shutdown();
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  FlagSet flags;
  if (!flags.Parse(argc, argv)) {
    std::fprintf(stderr, "ext_wall_throughput: %s\n", flags.Error().c_str());
    return 2;
  }
  const char* env_wall = std::getenv("SJOIN_BENCH_WALL");
  const bool wall = flags.GetBool("wall", false) ||
                    (env_wall != nullptr && std::strcmp(env_wall, "1") == 0);

  SystemConfig cfg = bench::ScaledConfig();
  cfg.workload.lambda = 5000.0;
  cfg.workload.key_domain = 20'000;
  cfg.join.window = 10 * kUsPerSec;

  bench::Reporter rep(
      "ext_wall_throughput", "Ext",
      "wall-clock slave throughput: lock-free hub + pinned spin pool",
      "median tuples/sec grows monotonically from workers=1 to 4 at unpaced "
      "offer on a >= 4-core host; paced rows hold their offered rate until "
      "the unpaced ceiling",
      cfg);
  rep.Deterministic(false);  // wall-clock derived by construction
  rep.Columns({"workers", "offered_tps", "reps", "tps_median", "tps_p95"});

  const std::size_t tuples =
      wall ? 120'000 : (bench::QuickMode() ? 8'000 : 20'000);
  const std::size_t batch = 2'000;
  const std::uint32_t reps = wall ? 5 : 2;
  std::vector<std::uint32_t> worker_counts =
      wall ? std::vector<std::uint32_t>{1, 2, 4, 8}
           : std::vector<std::uint32_t>{1, 2};
  std::vector<double> rates =
      wall ? std::vector<double>{0.0, 50'000.0} : std::vector<double>{0.0};

  std::vector<Rec> recs;
  recs.reserve(tuples);
  {
    MergedSource src(cfg.workload.lambda, cfg.workload.b_skew,
                     cfg.workload.key_domain, cfg.workload.seed);
    for (std::size_t i = 0; i < tuples; ++i) recs.push_back(src.Next());
  }

  std::printf("%-8s %12s %5s %12s %12s\n", "workers", "offered_tps", "reps",
              "tps_median", "tps_p95");

  std::uint64_t outputs_ref = 0;
  for (std::uint32_t workers : worker_counts) {
    for (double rate : rates) {
      std::vector<double> tps;
      for (std::uint32_t r = 0; r < reps; ++r) {
        const RepResult res =
            RunRep(cfg, recs, SweepPoint{workers, rate}, batch, wall);
        tps.push_back(res.tuples_per_sec);
        // The join output is workers- and pacing-independent (the
        // deterministic-merge claim); any drift is a correctness bug, not
        // noise.
        if (outputs_ref == 0) {
          outputs_ref = res.outputs;
        } else if (res.outputs != outputs_ref) {
          std::fprintf(stderr,
                       "ext_wall_throughput: output mismatch at workers=%u "
                       "rate=%.0f: %llu != %llu\n",
                       workers, rate,
                       static_cast<unsigned long long>(res.outputs),
                       static_cast<unsigned long long>(outputs_ref));
          return 1;
        }
      }
      rep.Num("%-8.0f", static_cast<double>(workers));
      rep.Num(" %12.0f", rate);
      rep.Num(" %5.0f", static_cast<double>(reps));
      rep.Num(" %12.0f", obs::SampleQuantile(tps, 0.5));
      rep.Num(" %12.0f", obs::SampleQuantile(tps, 0.95));
      rep.EndRow();
      std::fflush(stdout);
    }
  }
  return rep.Finish();
}
