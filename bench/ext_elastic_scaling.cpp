// Extension: elastic membership cost (ISSUE 7) -- what a runtime scale
// event costs, and how that cost scales with the partition-group count and
// the membership change rate.
//
// A wall-clock mini-cluster (master + 4 slaves + collector over
// InProcTransport) distributes a fixed trace while a scheduled membership
// plan admits and drains slaves mid-run. Two sweeps share one table:
//   * group count: one graceful leave at npart in {12, 24, 48} -- more
//     groups mean more drain migrations and replica handovers per
//     transition, so the drain latency and the epochs-to-steady-state
//     (master epochs with a transition in progress) grow;
//   * change rate: 1 / 2 / 4 alternating leave/join events at npart = 24 --
//     transition work accumulates linearly, the per-event cost stays flat
//     (transitions never overlap: one at a time by design).
// The drain chunk row shows the disruption/latency dial: a smaller
// drain_groups_per_epoch spreads the same moves over more epochs.
//
// `drain_ms` is the master-observed wall time inside transitions (handshake
// through farewell, summed); `memb_epochs` is deterministic for a scheduled
// plan and is the steady-state metric the chaos suite pins.
//
// Every scenario here is differentially safe by construction (the
// membership chaos suite asserts exactness and zero duplicate deliveries
// under these exact transitions); this bench only measures cost.
//
//   columns 1-3: npart, scheduled events, drain chunk
//   gnuplot: plot "..." using 1:7 (drain_ms) for the group-count sweep
//
// Wall-clock timings make this bench non-deterministic: its JSON report is
// marked deterministic=false, so bench_diff checks structure only.
//
// SJOIN_BENCH=quick shrinks the trace for smoke runs.
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/config.h"
#include "common/rng.h"
#include "core/runner.h"
#include "net/inproc_transport.h"

namespace {

using namespace sjoin;

/// Deterministic two-stream trace with strictly increasing timestamps.
std::vector<Rec> MakeTrace(std::size_t count, Time span_us,
                           std::uint64_t key_domain) {
  Pcg32 rng(Mix64(0x7E1AULL), 7);
  std::vector<Rec> trace;
  trace.reserve(count);
  const Time step = std::max<Time>(1, span_us / static_cast<Time>(count));
  Time ts = 0;
  for (std::size_t i = 0; i < count; ++i) {
    ts += 1 + rng.NextBounded(static_cast<std::uint32_t>(step));
    Rec rec;
    rec.ts = ts;
    rec.key = rng.NextBounded(static_cast<std::uint32_t>(key_domain));
    rec.stream = static_cast<StreamId>(i & 1);
    trace.push_back(rec);
  }
  return trace;
}

/// Alternating leave/join plan on slave index 1, starting at epoch 4: each
/// leave fully drains before the matching re-join, `events` transitions in
/// total.
std::vector<MembershipEvent> AlternatingPlan(std::size_t events,
                                             std::uint64_t gap) {
  std::vector<MembershipEvent> plan;
  std::uint64_t epoch = 4;
  for (std::size_t i = 0; i < events; ++i, epoch += gap) {
    plan.push_back(MembershipEvent{epoch, /*join=*/(i % 2) == 1, 1});
  }
  return plan;
}

/// One full cluster run over in-process channels, one thread per rank.
MasterSummary RunCluster(const SystemConfig& cfg, const WallOptions& wall) {
  const Rank n = cfg.num_slaves;
  InProcHub hub(n + 2);
  std::vector<std::thread> threads;
  threads.reserve(n + 1);
  std::vector<std::unique_ptr<Transport>> eps;
  for (Rank r = 0; r < n + 2; ++r) eps.push_back(hub.Endpoint(r));
  for (Rank s = 1; s <= n; ++s) {
    threads.emplace_back([&, s] { (void)RunSlaveNode(*eps[s], cfg, wall); });
  }
  std::thread collector([&] { (void)RunCollectorNode(*eps[n + 1], cfg); });

  MasterSummary master = RunMasterNode(*eps[0], cfg, wall);
  collector.join();
  hub.Shutdown();
  for (std::thread& t : threads) t.join();
  return master;
}

}  // namespace

int main() {
  const bool quick = bench::QuickMode();
  const std::size_t tuples = quick ? 2400 : 8000;
  const Time span = (quick ? 300 : 900) * kUsPerMs;

  SystemConfig cfg;
  cfg.num_slaves = 4;
  cfg.join.window = 40 * kUsPerMs;
  cfg.epoch.t_dist = 5 * kUsPerMs;
  cfg.epoch.t_rep = 1000 * kUsPerSec;  // no reorgs: isolate transition cost
  cfg.workload.tuple_bytes = 64;
  cfg.replication.enabled = true;  // handovers are part of the cost
  cfg.replication.ckpt_interval_epochs = 4;
  cfg.cluster.elastic.enabled = true;

  WallOptions wall;
  wall.run_for = 60 * kUsPerSec;  // cap; the trace ends the run
  wall.recv_timeout_us = 250 * kUsPerMs;
  wall.recv_max_retries = 3;
  wall.master_obs = &bench::SharedObs();
  const std::vector<Rec> trace = MakeTrace(tuples, span, 60);
  wall.input_trace = &trace;

  bench::Reporter rep("ext_elastic_scaling", "Ext elastic",
                      "membership transition cost vs group count, change "
                      "rate, and drain chunk",
                      "drain_moves and drain_ms grow with the group count "
                      "and the change rate; smaller chunks raise "
                      "memb_epochs, not total moves",
                      cfg);
  rep.Deterministic(false);  // wall-clock cluster: timings vary run to run
  std::printf("# trace: %zu tuples over %.3f s; transitions on slave idx 1 "
              "starting at epoch 4\n",
              tuples, UsToSeconds(span));
  std::printf("%-8s %8s %8s %12s %11s %12s %10s %12s\n", "npart", "events",
              "chunk", "drain_moves", "handovers", "memb_epochs", "drain_ms",
              "ms_per_event");
  rep.Columns({"npart", "events", "chunk", "drain_moves", "handovers",
               "memb_epochs", "drain_ms", "ms_per_event"});

  struct Case {
    std::uint32_t npart;
    std::size_t events;
    std::uint32_t chunk;
  };
  std::vector<Case> cases;
  // Group-count sweep: one graceful leave.
  for (std::uint32_t npart : {12u, 24u, 48u}) cases.push_back({npart, 1, 4});
  // Change-rate sweep at npart = 24.
  for (std::size_t events : {2u, 4u}) cases.push_back({24, events, 4});
  // Drain-chunk dial at npart = 24, one leave.
  for (std::uint32_t chunk : {1u, 8u}) cases.push_back({24, 1, chunk});

  for (const Case& c : cases) {
    SystemConfig run_cfg = cfg;
    run_cfg.join.num_partitions = c.npart;
    run_cfg.cluster.elastic.drain_groups_per_epoch = c.chunk;
    WallOptions run_wall = wall;
    // Leaves drain all of slave 1's groups; joins rebalance a share back.
    // The gap leaves room for the widest transition (48 groups / chunk 4).
    run_wall.membership = AlternatingPlan(c.events, /*gap=*/16);
    MasterSummary m = RunCluster(run_cfg, run_wall);
    const double drain_ms = static_cast<double>(m.membership_us) / 1000.0;
    const double per_event =
        c.events > 0 ? drain_ms / static_cast<double>(c.events) : 0.0;
    rep.Num("%-8.0f", static_cast<double>(c.npart));
    rep.Num(" %8.0f", static_cast<double>(c.events));
    rep.Num(" %8.0f", static_cast<double>(c.chunk));
    rep.Num(" %12.0f", static_cast<double>(m.drain_moves));
    rep.Num(" %11.0f", static_cast<double>(m.buddy_handovers));
    rep.Num(" %12.0f", static_cast<double>(m.membership_epochs));
    rep.Num(" %10.2f", drain_ms);
    rep.Num(" %12.2f", per_event);
    rep.EndRow();
    std::fflush(stdout);
  }
  return rep.Finish();
}
