// Extension: intra-slave worker-pool scaling at fig-6 defaults.
//
// Two views per worker count (1..8):
//   * virtual time -- a full SimDriver run (3 slaves, 5000 tuples/s, the
//     fig-6 geometry) with cfg.slave.workers = k: average production delay
//     and summed slave CPU shrink as the per-epoch batch pass advances the
//     clock by its critical path instead of the serial sum; the stable
//     worker_busy_cost counter reports the summed per-worker charge.
//   * real wall clock -- one slave's JoinModule fed the same generated
//     workload, batch pass timed around ProcessFor: pass_ms is the measured
//     wall time of the probe/insert pass, speedup is pass_ms(1)/pass_ms(k).
//
// The wall columns are host-dependent (bench_diff checks structure only);
// the acceptance claim is speedup >= 2 at k = 4 on a 4+-core host, with the
// join output byte-identical across k (asserted by worker_chaos_test, and
// cross-checked here via an output-count equality).
#include <chrono>
#include <cstdint>

#include "bench_common.h"
#include "core/worker_pool.h"
#include "gen/stream_source.h"
#include "join/join_module.h"
#include "join/sink.h"

namespace {

struct WallPass {
  double pass_ms = 0.0;
  std::uint64_t outputs = 0;
};

/// Feeds `recs` to one JoinModule in epoch-sized batches under a k-worker
/// pool, fully draining each batch, and returns the summed wall time of the
/// ProcessFor calls only (enqueue and teardown excluded).
WallPass RunWallPass(const sjoin::SystemConfig& base,
                     const std::vector<sjoin::Rec>& recs,
                     std::uint32_t workers, std::size_t batch) {
  using Clock = std::chrono::steady_clock;
  sjoin::SystemConfig cfg = base;
  cfg.slave.workers = workers;
  sjoin::StatsSink sink;
  sjoin::JoinModule jm(cfg, &sink);
  sjoin::WorkerPool pool(workers);
  jm.SetWorkerPool(&pool);
  // Per-worker probe_insert[wK] wall rows land in the report's wall_stages.
  jm.AttachMetrics(&sjoin::bench::SharedObs().registry);
  WallPass res;
  double us = 0.0;
  constexpr sjoin::Duration kDrain = 365LL * 24 * 3600 * sjoin::kUsPerSec;
  for (std::size_t i = 0; i < recs.size(); i += batch) {
    const std::size_t n = std::min(batch, recs.size() - i);
    jm.EnqueueBatch(std::span<const sjoin::Rec>(recs.data() + i, n));
    const auto t0 = Clock::now();
    (void)jm.ProcessFor(static_cast<sjoin::Time>(recs[i].ts), kDrain);
    us += std::chrono::duration<double, std::micro>(Clock::now() - t0).count();
  }
  res.pass_ms = us / 1000.0;
  res.outputs = jm.Outputs();
  return res;
}

}  // namespace

int main() {
  using namespace sjoin;
  SystemConfig base = bench::ScaledConfig();
  base.num_slaves = 3;
  base.workload.lambda = 5000.0;  // fig-6 mid-range point
  bench::Reporter rep("ext_worker_scaling", "Ext",
                      "intra-slave worker-pool scaling (1..8 workers)",
                      "virtual delay/CPU fall with the critical path as "
                      "workers are added; measured batch-pass wall time "
                      "scales down near-linearly until the merge and the "
                      "core count bound it",
                      base);
  rep.Deterministic(false);  // pass_ms/speedup are wall-clock derived
  rep.Columns({"workers", "delay_s", "cpu_s", "busy_cost_s", "pass_ms",
               "speedup"});

  // Wall-pass workload: the fig-6 arrival process, one slave's worth of
  // partitions, a denser key domain so probes dominate. Identical input for
  // every worker count; output count equality is asserted below.
  SystemConfig wall_cfg = base;
  wall_cfg.workload.key_domain = 20'000;
  wall_cfg.join.window = 10 * kUsPerSec;
  const std::size_t wall_tuples = bench::QuickMode() ? 40'000 : 150'000;
  const std::size_t wall_batch = 5'000;
  std::vector<Rec> recs;
  recs.reserve(wall_tuples);
  {
    MergedSource src(wall_cfg.workload.lambda, wall_cfg.workload.b_skew,
                     wall_cfg.workload.key_domain, wall_cfg.workload.seed);
    for (std::size_t i = 0; i < wall_tuples; ++i) recs.push_back(src.Next());
  }

  std::printf("%-8s %8s %8s %11s %9s %8s\n", "workers", "delay_s", "cpu_s",
              "busy_s", "pass_ms", "speedup");

  double pass_ms_1 = 0.0;
  std::uint64_t outputs_1 = 0;
  for (std::uint32_t workers = 1; workers <= 8; ++workers) {
    SystemConfig cfg = base;
    cfg.slave.workers = workers;
    RunMetrics rm = bench::Run(cfg);
    const WallPass wall = RunWallPass(wall_cfg, recs, workers, wall_batch);
    if (workers == 1) {
      pass_ms_1 = wall.pass_ms;
      outputs_1 = wall.outputs;
    } else if (wall.outputs != outputs_1) {
      std::fprintf(stderr,
                   "ext_worker_scaling: output mismatch at workers=%u: "
                   "%llu != %llu\n",
                   workers, static_cast<unsigned long long>(wall.outputs),
                   static_cast<unsigned long long>(outputs_1));
      return 1;
    }
    rep.Num("%-8.0f", static_cast<double>(workers));
    rep.Num(" %8.2f", rm.AvgDelaySec());
    rep.Num(" %8.2f", bench::PerSlaveSec(rm, rm.TotalCpu()));
    rep.Num(" %11.2f", static_cast<double>(rm.worker_busy_cost_us) / 1e6);
    rep.Num(" %9.1f", wall.pass_ms);
    rep.Num(" %8.2f", wall.pass_ms > 0.0 ? pass_ms_1 / wall.pass_ms : 0.0);
    rep.EndRow();
    std::fflush(stdout);
  }
  return rep.Finish();
}
