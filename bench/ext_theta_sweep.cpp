// Ablation: the partition-tuning granularity theta. Small theta buys cheap
// probes but pays for constant splitting/merging and directory overhead;
// large theta degenerates towards no tuning. (The paper flags dynamic
// tuning of such parameters as future work.)
#include "bench_common.h"

int main() {
  using namespace sjoin;
  SystemConfig base = bench::ScaledConfig();
  base.num_slaves = 4;
  base.workload.lambda = 4000;
  bench::Header("Ablation", "theta sweep (4 slaves, rate 4000)",
                "CPU time rises with theta towards the untuned cost; very "
                "small theta adds tuning-move overhead and splits",
                base);

  std::printf("%-10s %10s %10s %12s %10s %10s\n", "theta_KB", "cpu_s",
              "delay_s", "comparisons", "splits", "merges");
  for (std::size_t kb : {18u, 37u, 75u, 150u, 300u, 600u, 1200u}) {
    SystemConfig cfg = base;
    cfg.join.theta_bytes = kb * 1024;
    RunMetrics rm = bench::Run(cfg);
    std::printf("%-10zu %10.1f %10.2f %12llu %10llu %10llu\n", kb,
                bench::PerSlaveSec(rm, rm.TotalCpu()), rm.AvgDelaySec(),
                static_cast<unsigned long long>(rm.TotalComparisons()),
                static_cast<unsigned long long>(rm.splits),
                static_cast<unsigned long long>(rm.merges));
    std::fflush(stdout);
  }
  return 0;
}
