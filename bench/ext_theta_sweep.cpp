// Ablation: the partition-tuning granularity theta. Small theta buys cheap
// probes but pays for constant splitting/merging and directory overhead;
// large theta degenerates towards no tuning. (The paper flags dynamic
// tuning of such parameters as future work.)
#include "bench_common.h"

int main() {
  using namespace sjoin;
  SystemConfig base = bench::ScaledConfig();
  base.num_slaves = 4;
  base.workload.lambda = 4000;
  bench::Reporter rep("ext_theta_sweep", "Ablation",
                      "theta sweep (4 slaves, rate 4000)",
                      "CPU time rises with theta towards the untuned cost; "
                      "very small theta adds tuning-move overhead and "
                      "splits",
                      base);

  std::printf("%-10s %10s %10s %12s %10s %10s\n", "theta_KB", "cpu_s",
              "delay_s", "comparisons", "splits", "merges");
  rep.Columns({"theta_KB", "cpu_s", "delay_s", "comparisons", "splits",
               "merges"});
  for (std::size_t kb : {18u, 37u, 75u, 150u, 300u, 600u, 1200u}) {
    SystemConfig cfg = base;
    cfg.join.theta_bytes = kb * 1024;
    RunMetrics rm = bench::Run(cfg);
    rep.Num("%-10.0f", static_cast<double>(kb));
    rep.Num(" %10.1f", bench::PerSlaveSec(rm, rm.TotalCpu()));
    rep.Num(" %10.2f", rm.AvgDelaySec());
    rep.Num(" %12.0f", static_cast<double>(rm.TotalComparisons()));
    rep.Num(" %10.0f", static_cast<double>(rm.splits));
    rep.Num(" %10.0f", static_cast<double>(rm.merges));
    rep.EndRow();
    std::fflush(stdout);
  }
  return rep.Finish();
}
