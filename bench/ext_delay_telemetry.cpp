// Extension: distributed-telemetry cost and yield (ISSUE 8) -- what the
// end-to-end tuple-delay sampling, the causal trace context, and the flight
// recorder cost at run time, and what the sampled histograms actually
// report.
//
// A wall-clock mini-cluster (master + 3 slaves + collector over
// InProcTransport) distributes a fixed trace while the telemetry knobs
// sweep:
//   * delay_sample_rate in {0 (off), 16 (default), 1 (every probe)} --
//     the sampling predicate is one Mix64 per probe tuple, the histogram
//     update two relaxed atomics; `sampled` counts the observations the
//     rate admitted, and the delay quantiles are read back from the
//     per-group tuple_delay_us histograms the slaves shipped;
//   * trace_events on at rate 16 -- adds the flow starts/finishes of the
//     causal batch/stats flows on top of the span events.
// The flight recorder runs in every configuration (it is always on by
// design), so its cost is part of every row's wall_ms.
//
// `wall_ms` is real elapsed time of the full cluster run and varies with
// machine load: the JSON report is marked deterministic=false, so
// bench_diff checks structure only. `sampled`, the quantiles, and `skew`
// are seed-deterministic (asserted by the worker-count identity test in
// tests/harness/worker_chaos_test.cpp); they are reported here so the
// telemetry's yield is visible next to its cost.
//
// SJOIN_BENCH=quick shrinks the trace for smoke runs.
#include <chrono>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/config.h"
#include "common/rng.h"
#include "common/stats.h"
#include "core/runner.h"
#include "net/inproc_transport.h"
#include "obs/cluster_view.h"
#include "obs/obs.h"

namespace {

using namespace sjoin;

/// Deterministic two-stream trace with strictly increasing timestamps.
std::vector<Rec> MakeTrace(std::size_t count, Time span_us,
                           std::uint64_t key_domain) {
  Pcg32 rng(Mix64(0xDE1A9ULL), 7);
  std::vector<Rec> trace;
  trace.reserve(count);
  const Time step = std::max<Time>(1, span_us / static_cast<Time>(count));
  Time ts = 0;
  for (std::size_t i = 0; i < count; ++i) {
    ts += 1 + rng.NextBounded(static_cast<std::uint32_t>(step));
    Rec rec;
    rec.ts = ts;
    rec.key = rng.NextBounded(static_cast<std::uint32_t>(key_domain));
    rec.stream = static_cast<StreamId>(i & 1);
    trace.push_back(rec);
  }
  return trace;
}

struct RunResult {
  MasterSummary master;
  double wall_ms = 0.0;
  std::uint64_t sampled = 0;  ///< observations across every slave histogram
  double p50_ms = 0.0;        ///< merged tuple-delay quantiles
  double p95_ms = 0.0;
  double skew = 0.0;  ///< master's final group_skew_ratio gauge
};

/// One full cluster run, one thread per rank, per-rank obs bundles.
RunResult RunCluster(const SystemConfig& cfg, WallOptions wall,
                     bool trace_events) {
  const Rank n = cfg.num_slaves;
  InProcHub hub(n + 2);
  std::vector<std::unique_ptr<obs::NodeObs>> obs;
  for (Rank r = 0; r < n + 2; ++r) {
    obs.push_back(std::make_unique<obs::NodeObs>());
    obs[r]->trace.SetRank(r);
    obs[r]->trace.SetEnabled(trace_events);
  }
  wall.master_obs = obs[0].get();
  wall.slave_obs.clear();
  for (Rank s = 1; s <= n; ++s) wall.slave_obs.push_back(obs[s].get());

  std::vector<std::unique_ptr<Transport>> eps;
  for (Rank r = 0; r < n + 2; ++r) eps.push_back(hub.Endpoint(r));
  std::vector<std::thread> threads;
  threads.reserve(n + 1);
  for (Rank s = 1; s <= n; ++s) {
    threads.emplace_back([&, s] { (void)RunSlaveNode(*eps[s], cfg, wall); });
  }
  std::thread collector([&] {
    (void)RunCollectorNode(*eps[n + 1], cfg, obs[n + 1].get());
  });

  const auto t0 = std::chrono::steady_clock::now();
  RunResult res;
  res.master = RunMasterNode(*eps[0], cfg, wall);
  collector.join();
  hub.Shutdown();
  for (std::thread& t : threads) t.join();
  res.wall_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - t0)
                    .count();

  // Merge every slave's per-group delay histograms into one distribution.
  Histogram merged(DelayHistogramBounds());
  for (Rank s = 1; s <= n; ++s) {
    for (const obs::MetricSample& m :
         obs::CollectSamples(obs[s]->registry, /*include_volatile=*/false)) {
      if (m.name != "tuple_delay_us") continue;
      res.sampled += m.hist_total;
      merged.Merge(Histogram::FromCounts(m.hist_bounds, m.hist_counts));
    }
  }
  if (res.sampled > 0) {
    res.p50_ms = merged.Quantile(0.50) / 1000.0;
    res.p95_ms = merged.Quantile(0.95) / 1000.0;
  }
  res.skew = obs[0]->registry.GaugeValue("group_skew_ratio");
  return res;
}

}  // namespace

int main() {
  const bool quick = bench::QuickMode();
  const std::size_t tuples = quick ? 3000 : 12000;
  const Time span = (quick ? 300 : 1200) * kUsPerMs;

  SystemConfig cfg;
  cfg.num_slaves = 3;
  cfg.join.num_partitions = 24;
  cfg.join.window = 40 * kUsPerMs;
  cfg.epoch.t_dist = 5 * kUsPerMs;
  cfg.epoch.t_rep = 20 * kUsPerMs;
  cfg.workload.tuple_bytes = 64;

  WallOptions wall;
  wall.run_for = 60 * kUsPerSec;  // cap; the trace ends the run
  wall.recv_timeout_us = 250 * kUsPerMs;
  wall.recv_max_retries = 3;
  const std::vector<Rec> trace = MakeTrace(tuples, span, 48);
  wall.input_trace = &trace;

  bench::Reporter rep("ext_delay_telemetry", "Ext telemetry",
                      "distributed-telemetry cost: delay sampling rate and "
                      "causal tracing vs run wall time",
                      "sampled observations scale ~1/rate at flat wall cost; "
                      "tracing adds flow events, not run time",
                      cfg);
  rep.Deterministic(false);  // wall-clock cluster: timings vary run to run
  std::printf("# trace: %zu tuples over %.3f s; 3 slaves, 24 groups\n",
              tuples, UsToSeconds(span));
  std::printf("%-8s %6s %9s %10s %10s %7s %9s\n", "rate", "trace", "sampled",
              "p50_ms", "p95_ms", "skew", "wall_ms");
  rep.Columns(
      {"rate", "trace", "sampled", "p50_ms", "p95_ms", "skew", "wall_ms"});

  struct Case {
    std::uint32_t rate;
    bool trace_events;
  };
  const std::vector<Case> cases = {
      {0, false}, {16, false}, {1, false}, {16, true}};
  for (const Case& c : cases) {
    SystemConfig run_cfg = cfg;
    run_cfg.obs.delay_sample_rate = c.rate;
    RunResult r = RunCluster(run_cfg, wall, c.trace_events);
    rep.Num("%-8.0f", static_cast<double>(c.rate));
    rep.Num(" %6.0f", c.trace_events ? 1.0 : 0.0);
    rep.Num(" %9.0f", static_cast<double>(r.sampled));
    rep.Num(" %10.3f", r.p50_ms);
    rep.Num(" %10.3f", r.p95_ms);
    rep.Num(" %7.2f", r.skew);
    rep.Num(" %9.2f", r.wall_ms);
    rep.EndRow();
    std::fflush(stdout);
  }
  return rep.Finish();
}
