// Shared scaffolding for the figure-reproduction benches.
//
// Every bench regenerates one table/figure of the paper's evaluation as a
// gnuplot-ready text table on stdout, with a header recording the exact
// configuration and the paper's expected shape. EXPERIMENTS.md records
// paper-vs-measured for each.
//
// Geometry scaling: the paper runs W = 10 min windows for 20 minutes per
// point on a 930 MHz cluster. This harness runs the *same protocol at the
// same arrival rates* but scales the window to 60 s and theta proportionally
// (150 KB instead of 1.5 MB, preserving theta / per-group window volume);
// with fine tuning on, a probe's cost depends on theta (the mini-group size
// cap), not W, so the saturation knees sit where the paper's do while each
// point simulates in seconds. The CostModel in common/cost_model.h supplies
// the calibrated P3-era per-comparison / per-byte / per-message charges.
//
// SJOIN_BENCH=quick shrinks warmup/measure for smoke runs.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/config.h"
#include "core/metrics.h"
#include "core/sim_driver.h"

namespace sjoin::bench {

/// The scaled experiment configuration (see file comment). Everything not
/// listed here keeps the paper's Table I default.
inline SystemConfig ScaledConfig() {
  SystemConfig cfg;
  cfg.join.window = 60 * kUsPerSec;     // paper: 600 s (scaled 10x)
  cfg.join.theta_bytes = 150 * 1024;    // paper: 1.5 MB (scaled 10x)
  return cfg;
}

struct BenchTimes {
  Duration warmup;
  Duration measure;
};

inline bool QuickMode() {
  const char* v = std::getenv("SJOIN_BENCH");
  return v != nullptr && std::strcmp(v, "quick") == 0;
}

/// Warmup must exceed the window so steady-state window volume is reached
/// before measurement starts (the paper warms up 10 of its 20 minutes).
inline BenchTimes Times() {
  if (QuickMode()) {
    return {75 * kUsPerSec, 45 * kUsPerSec};
  }
  return {90 * kUsPerSec, 120 * kUsPerSec};
}

inline SimOptions Opts() {
  BenchTimes t = Times();
  return SimOptions{t.warmup, t.measure};
}

inline void Header(const char* figure, const char* title,
                   const char* paper_shape, const SystemConfig& cfg) {
  BenchTimes t = Times();
  std::printf("# %s -- %s\n", figure, title);
  std::printf("# paper shape: %s\n", paper_shape);
  std::printf("# cfg: %s\n", Summarize(cfg).c_str());
  std::printf("# warmup=%.0fs measure=%.0fs%s\n", UsToSeconds(t.warmup),
              UsToSeconds(t.measure), QuickMode() ? " (quick mode)" : "");
}

/// Average per-active-slave value of a duration metric, in seconds.
inline double PerSlaveSec(const RunMetrics& rm, Duration total) {
  double n = rm.avg_active_slaves > 0.0
                 ? rm.avg_active_slaves
                 : static_cast<double>(rm.slaves.size());
  return UsToSeconds(total) / n;
}

inline RunMetrics Run(const SystemConfig& cfg) {
  SimDriver driver(cfg, Opts());
  return driver.Run();
}

}  // namespace sjoin::bench
