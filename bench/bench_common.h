// Shared scaffolding for the figure-reproduction benches.
//
// Every bench regenerates one table/figure of the paper's evaluation as a
// gnuplot-ready text table on stdout, with a header recording the exact
// configuration and the paper's expected shape. EXPERIMENTS.md records
// paper-vs-measured for each.
//
// Alongside the stdout table, every bench also emits a structured JSON
// report (obs/bench_report.h, schema "sjoin-bench-report" v1) carrying the
// same rows plus the run's stable registry counters and wall-clock stage
// profile. tools/bench_all merges the per-bench files into one suite file;
// tools/bench_diff gates regressions between two suites. The Reporter class
// below is the single producer of both outputs: a cell is printed and
// recorded by the same call, so table and JSON cannot drift apart.
//
//   SJOIN_BENCH=quick          shrink warmup/measure for smoke runs
//   SJOIN_BENCH_JSON_DIR=DIR   where the JSON report is written (default ".")
//   SJOIN_BENCH_JSON=0|off     disable the JSON report entirely
//
// Geometry scaling: the paper runs W = 10 min windows for 20 minutes per
// point on a 930 MHz cluster. This harness runs the *same protocol at the
// same arrival rates* but scales the window to 60 s and theta proportionally
// (150 KB instead of 1.5 MB, preserving theta / per-group window volume);
// with fine tuning on, a probe's cost depends on theta (the mini-group size
// cap), not W, so the saturation knees sit where the paper's do while each
// point simulates in seconds. The CostModel in common/cost_model.h supplies
// the calibrated P3-era per-comparison / per-byte / per-message charges.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "common/config.h"
#include "core/metrics.h"
#include "core/sim_driver.h"
#include "obs/bench_report.h"
#include "obs/cluster_view.h"
#include "obs/obs.h"
#include "obs/profiler.h"

namespace sjoin::bench {

/// The scaled experiment configuration (see file comment). Everything not
/// listed here keeps the paper's Table I default.
inline SystemConfig ScaledConfig() {
  SystemConfig cfg;
  cfg.join.window = 60 * kUsPerSec;     // paper: 600 s (scaled 10x)
  cfg.join.theta_bytes = 150 * 1024;    // paper: 1.5 MB (scaled 10x)
  return cfg;
}

struct BenchTimes {
  Duration warmup;
  Duration measure;
};

inline bool QuickMode() {
  const char* v = std::getenv("SJOIN_BENCH");
  return v != nullptr && std::strcmp(v, "quick") == 0;
}

inline const char* ModeName() { return QuickMode() ? "quick" : "full"; }

/// Warmup must exceed the window so steady-state window volume is reached
/// before measurement starts (the paper warms up 10 of its 20 minutes).
inline BenchTimes Times() {
  if (QuickMode()) {
    return {75 * kUsPerSec, 45 * kUsPerSec};
  }
  return {90 * kUsPerSec, 120 * kUsPerSec};
}

/// Observability bundle shared by every simulated point of this bench
/// process: registry counters accumulate across points and land in the JSON
/// report's `counters` map, the wall-stage histograms in `wall_stages`.
inline obs::NodeObs& SharedObs() {
  static obs::NodeObs ob;
  return ob;
}

inline SimOptions Opts() {
  BenchTimes t = Times();
  SimOptions o{t.warmup, t.measure};
  o.obs = &SharedObs();
  return o;
}

/// Average per-active-slave value of a duration metric, in seconds.
inline double PerSlaveSec(const RunMetrics& rm, Duration total) {
  double n = rm.avg_active_slaves > 0.0
                 ? rm.avg_active_slaves
                 : static_cast<double>(rm.slaves.size());
  return UsToSeconds(total) / n;
}

inline RunMetrics Run(const SystemConfig& cfg) {
  SimDriver driver(cfg, Opts());
  return driver.Run();
}

/// Produces the stdout table and the JSON report from the same cell stream.
///
/// Usage:
///   bench::Reporter rep("fig05_delay_small", "Fig 5", title, shape, cfg);
///   rep.Columns({"rate", "delay_s_n1", "delay_s_n2"});
///   ... per point: rep.Num("%-8.0f", rate); rep.Num(" %10.2f", d); ...
///   rep.EndRow();
///   return rep.Finish();
///
/// Cells print with the exact printf format the old table used, so the
/// stdout output is unchanged; the numeric value is recorded unformatted in
/// the JSON row. Column-header lines stay hand-printed (their formatting is
/// per-bench); Columns() only records the machine-readable names.
class Reporter {
 public:
  Reporter(std::string bench_id, std::string figure, std::string title,
           std::string paper_shape, const SystemConfig& cfg) {
    BenchTimes t = Times();
    report_.bench_id = std::move(bench_id);
    report_.figure = std::move(figure);
    report_.title = std::move(title);
    report_.paper_shape = std::move(paper_shape);
    report_.mode = ModeName();
    report_.warmup_s = UsToSeconds(t.warmup);
    report_.measure_s = UsToSeconds(t.measure);
    report_.config = Summarize(cfg);
    std::printf("# %s -- %s\n", report_.figure.c_str(),
                report_.title.c_str());
    std::printf("# paper shape: %s\n", report_.paper_shape.c_str());
    std::printf("# cfg: %s\n", report_.config.c_str());
    std::printf("# warmup=%.0fs measure=%.0fs mode=%s\n", report_.warmup_s,
                report_.measure_s, report_.mode.c_str());
  }

  Reporter(const Reporter&) = delete;
  Reporter& operator=(const Reporter&) = delete;

  /// Marks the bench's numbers as wall-clock derived: bench_diff will check
  /// the table's structure but not gate on the values.
  void Deterministic(bool d) { report_.deterministic = d; }

  void Columns(std::vector<std::string> names) {
    report_.columns = std::move(names);
  }

  /// Prints `v` with `fmt` (one %-conversion consuming a double) and records
  /// the raw value as the next cell of the current row.
  void Num(const char* fmt, double v) {
    std::printf(fmt, v);  // NOLINT(cert-err33-c)
    row_.push_back(obs::BenchCell::Num(v));
  }

  /// Prints `s` with `fmt` (one %s) and records the text cell.
  void Text(const char* fmt, const char* s) {
    std::printf(fmt, s);  // NOLINT(cert-err33-c)
    row_.push_back(obs::BenchCell::Text(s));
  }

  /// Records a cell without printing (for benches whose stdout formatting
  /// does not map one printf per cell).
  void CellNum(double v) { row_.push_back(obs::BenchCell::Num(v)); }
  void CellText(std::string s) {
    row_.push_back(obs::BenchCell::Text(std::move(s)));
  }

  /// Ends the current row: newline on stdout, row appended to the report.
  void EndRow() {
    std::printf("\n");
    EndRowQuiet();
  }

  /// Ends the current row without touching stdout (for benches whose table
  /// is printed by other machinery, e.g. google-benchmark's console).
  void EndRowQuiet() {
    report_.rows.push_back(std::move(row_));
    row_.clear();
  }

  /// Adds a bench-specific counter to the report (beyond the registry ones).
  void Counter(std::string name, std::uint64_t v) {
    extra_counters_.emplace_back(std::move(name), v);
  }

  /// Harvests the shared registry and writes `<bench_id>.json` into
  /// SJOIN_BENCH_JSON_DIR (default "."). Returns the bench's exit code:
  /// 0 on success (or with SJOIN_BENCH_JSON=0), 1 when the write failed.
  int Finish() {
    const obs::MetricsRegistry& reg = SharedObs().registry;
    for (const obs::MetricSample& s : obs::CollectSamples(reg, false)) {
      if (s.kind != obs::MetricKind::kCounter) continue;
      std::string name = s.name;
      if (!s.labels.empty()) name += "{" + s.labels + "}";
      report_.counters.emplace_back(std::move(name), s.counter);
    }
    for (auto& kv : extra_counters_) {
      report_.counters.push_back(std::move(kv));
    }
    report_.wall_stages = obs::SummarizeWallStages(reg);

    const char* off = std::getenv("SJOIN_BENCH_JSON");
    if (off != nullptr &&
        (std::strcmp(off, "0") == 0 || std::strcmp(off, "off") == 0)) {
      return 0;
    }
    const char* dir = std::getenv("SJOIN_BENCH_JSON_DIR");
    std::string path = (dir != nullptr && *dir != '\0') ? dir : ".";
    path += "/" + report_.bench_id + ".json";
    std::string json = report_.ToJson();
    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (f == nullptr) {
      std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
      return 1;
    }
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::fprintf(stderr, "bench json: %s\n", path.c_str());
    return 0;
  }

  const obs::BenchReport& Report() const { return report_; }

 private:
  obs::BenchReport report_;
  std::vector<obs::BenchCell> row_;
  std::vector<std::pair<std::string, std::uint64_t>> extra_counters_;
};

}  // namespace sjoin::bench
