// Extension (paper future work: "dynamically tuning ... distribution
// epoch"): the adaptive epoch controller walks t_d along the Fig 13/14
// tradeoff on its own. Started from deliberately bad epochs at a moderate
// load, it should land near the same operating region either way -- short
// initial epochs grow (comm fraction too high), long ones shrink (delay
// cheap to buy back).
#include "bench_common.h"

int main() {
  using namespace sjoin;
  SystemConfig base = bench::ScaledConfig();
  base.num_slaves = 3;
  base.epoch_tuner.enabled = true;
  base.epoch_tuner.min_epoch = 250 * kUsPerMs;
  base.epoch_tuner.max_epoch = 8 * kUsPerSec;
  base.epoch_tuner.shrink_step = kUsPerSec;  // visible inside one bench run
  bench::Reporter rep("ext_adaptive_epoch", "Ext tuner",
                      "adaptive distribution epoch (3 slaves)",
                      "from any starting t_d the controller converges "
                      "towards a moderate epoch: delay close to the "
                      "good-static case, comm overhead far below the "
                      "bad-short-epoch case (cf. Figs 13/14)",
                      base);

  std::printf("%-10s %-8s %10s %10s %12s %8s %8s\n", "mode", "t_d0",
              "delay_s", "comm_s", "final_t_d_s", "grows", "shrinks");
  rep.Columns({"mode", "t_d0", "delay_s", "comm_s", "final_t_d_s", "grows",
               "shrinks"});
  for (double td0 : {0.25, 2.0, 8.0}) {
    for (int adaptive = 0; adaptive <= 1; ++adaptive) {
      SystemConfig cfg = base;
      cfg.epoch.t_dist = SecondsToUs(td0);
      // A tighter control loop than Table I's 10x ratio so the tuner gets
      // several decisions within one bench run.
      cfg.epoch.t_rep = 5 * cfg.epoch.t_dist;
      cfg.epoch_tuner.enabled = adaptive == 1;
      RunMetrics rm = bench::Run(cfg);
      rep.Text("%-10s", adaptive ? "adaptive" : "static");
      rep.Num(" %-8.2f", td0);
      rep.Num(" %10.2f", rm.AvgDelaySec());
      rep.Num(" %10.1f", bench::PerSlaveSec(rm, rm.TotalComm()));
      rep.Num(" %12.2f", UsToSeconds(rm.final_t_dist));
      rep.Num(" %8.0f", static_cast<double>(rm.epoch_grows));
      rep.Num(" %8.0f", static_cast<double>(rm.epoch_shrinks));
      rep.EndRow();
      std::fflush(stdout);
    }
  }
  return rep.Finish();
}
