// Figure 13: average production delay vs distribution epoch (3 slaves,
// default rate). Tuples wait at the master for up to one epoch, so delay
// grows with t_d.
#include "bench_common.h"

int main() {
  using namespace sjoin;
  SystemConfig base = bench::ScaledConfig();
  base.num_slaves = 3;
  bench::Reporter rep("fig13_delay_vs_epoch", "Fig 13",
                      "average delay vs distribution epoch (3 slaves)",
                      "delay grows roughly linearly with the epoch "
                      "(master-side buffering dominates), from sub-second "
                      "at t_d=0.25 s to ~6 s at t_d=6 s",
                      base);

  const double epochs_s[] = {0.25, 0.5, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0};

  std::printf("%-8s %10s\n", "t_d_s", "delay_s");
  rep.Columns({"t_d_s", "delay_s"});
  for (double td : epochs_s) {
    SystemConfig cfg = base;
    cfg.epoch.t_dist = SecondsToUs(td);
    cfg.epoch.t_rep = 10 * cfg.epoch.t_dist;  // keep the paper's ratio
    RunMetrics rm = bench::Run(cfg);
    rep.Num("%-8.2f", td);
    rep.Num(" %10.2f", rm.AvgDelaySec());
    rep.EndRow();
    std::fflush(stdout);
  }
  return rep.Finish();
}
