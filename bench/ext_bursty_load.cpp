// Extension (paper section II: "this arrival rate can change over time"):
// a cyclic quiet/surge workload under three cluster policies. Adaptive
// declustering should track the load -- fewer slave-seconds than the static
// over-provisioned cluster, far lower delay than the static minimal one.
#include <string>

#include "bench_common.h"

int main() {
  using namespace sjoin;
  SystemConfig base = bench::ScaledConfig();
  base.num_slaves = 5;
  // Phases much longer than the window and the reorganization epoch, so
  // adaptation can settle within each phase (fast cycles relative to the
  // window cause thrash -- the paper's shrink-when-nobody-supplies rule has
  // no hysteresis; see EXPERIMENTS.md).
  base.workload.rate_schedule = {
      {150 * kUsPerSec, 1000.0},  // quiet
      {150 * kUsPerSec, 5000.0},  // surge
  };
  base.balance.th_sup = 0.2;  // classify eagerly
  base.epoch.t_rep = 10 * kUsPerSec;
  bench::Reporter rep("ext_bursty_load", "Ext bursty",
                      "cyclic quiet(1000)/surge(5000) load, 300 s period "
                      "(5 slaves available)",
                      "adaptive declustering saves slave-seconds vs the "
                      "over-provisioned cluster, but pays delay at every "
                      "surge onset: the protocol moves only ONE "
                      "partition-group per supplier per reorganization "
                      "epoch, so re-spreading the load is slow -- "
                      "shortening t_r (the 'adaptive-fast' row) buys "
                      "tracking speed with migration traffic",
                      base);

  std::printf("# NOTE: this bench overrides the standard windows: warmup one "
              "full load cycle, measure two (see source)\n");

  struct Policy {
    const char* name;
    std::uint32_t active0;
    bool adaptive;
  };
  std::printf("%-16s %10s %12s %14s %12s\n", "policy", "delay_s",
              "avg_active", "comm_agg_s", "migrations");
  rep.Columns({"policy", "delay_s", "avg_active", "comm_agg_s",
               "migrations"});
  for (Policy p : {Policy{"static-min", 2, false},
                   Policy{"static-max", 5, false},
                   Policy{"adaptive", 2, true},
                   Policy{"adaptive-fast", 2, true}}) {
    SystemConfig cfg = base;
    cfg.initial_active_slaves = p.active0;
    cfg.balance.adaptive_declustering = p.adaptive;
    const bool fast = std::string(p.name) == "adaptive-fast";
    if (fast) cfg.epoch.t_rep = 4 * kUsPerSec;
    // Measure two full load cycles after one warmup cycle.
    SimOptions opts{300 * kUsPerSec, 600 * kUsPerSec};
    if (bench::QuickMode()) opts = {150 * kUsPerSec, 300 * kUsPerSec};
    opts.obs = &bench::SharedObs();
    RunMetrics rm = SimDriver(cfg, opts).Run();
    rep.Text("%-16s", p.name);
    rep.Num(" %10.2f", rm.AvgDelaySec());
    rep.Num(" %12.2f", rm.avg_active_slaves);
    rep.Num(" %14.1f", UsToSeconds(rm.TotalComm()));
    rep.Num(" %12.0f", static_cast<double>(rm.migrations));
    rep.EndRow();
    std::fflush(stdout);
  }
  return rep.Finish();
}
