// Figure 14: communication overhead vs distribution epoch (3 slaves).
// Shorter epochs mean more, smaller messages: the fixed per-message cost
// dominates and the total communication overhead rises as t_d shrinks --
// the tradeoff against Figure 13's delay.
#include "bench_common.h"

int main() {
  using namespace sjoin;
  SystemConfig base = bench::ScaledConfig();
  base.num_slaves = 3;
  bench::Reporter rep("fig14_comm_vs_epoch", "Fig 14",
                      "comm overhead vs distribution epoch (3 slaves)",
                      "overhead falls steeply as t_d grows (fewer messages, "
                      "better amortized per-message cost), flattening once "
                      "payload cost dominates",
                      base);

  const double epochs_s[] = {0.25, 0.5, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0};

  std::printf("%-8s %10s\n", "t_d_s", "comm_s");
  rep.Columns({"t_d_s", "comm_s"});
  for (double td : epochs_s) {
    SystemConfig cfg = base;
    cfg.epoch.t_dist = SecondsToUs(td);
    cfg.epoch.t_rep = 10 * cfg.epoch.t_dist;
    RunMetrics rm = bench::Run(cfg);
    rep.Num("%-8.2f", td);
    rep.Num(" %10.1f", bench::PerSlaveSec(rm, rm.TotalComm()));
    rep.EndRow();
    std::fflush(stdout);
  }
  return rep.Finish();
}
