// Table I: default experiment parameters. This binary prints the values the
// library actually uses so the table can be regenerated (and diffs against
// the paper are visible at a glance).
#include <cstdio>

#include "common/config.h"

int main() {
  using namespace sjoin;
  SystemConfig cfg;
  std::printf("# Table I -- default values used in experiments\n");
  std::printf("%-28s %-12s %s\n", "parameter", "default", "comment");
  std::printf("%-28s %-12.0f %s\n", "W_i (i=1,2)",
              UsToSeconds(cfg.join.window) / 60.0, "window length (min)");
  std::printf("%-28s %-12.0f %s\n", "lambda", cfg.workload.lambda,
              "avg arrival rate (tuples/sec/stream)");
  std::printf("%-28s %-12.1f %s\n", "b", cfg.workload.b_skew,
              "skew in join attribute values (b-model)");
  std::printf("%-28s %-12.2f %s\n", "Th_con", cfg.balance.th_con,
              "consumer threshold");
  std::printf("%-28s %-12.1f %s\n", "Th_sup", cfg.balance.th_sup,
              "supplier threshold");
  std::printf("%-28s %-12.1f %s\n", "theta",
              static_cast<double>(cfg.join.theta_bytes) / (1024.0 * 1024.0),
              "partition tuning parameter (MB)");
  std::printf("%-28s %-12zu %s\n", "block size",
              cfg.join.block_bytes / 1024, "block size (KB)");
  std::printf("%-28s %-12.0f %s\n", "t_d", UsToSeconds(cfg.epoch.t_dist),
              "distribution epoch (sec)");
  std::printf("%-28s %-12.0f %s\n", "t_r", UsToSeconds(cfg.epoch.t_rep),
              "reorganization epoch (sec)");
  std::printf("%-28s %-12u %s\n", "partitions", cfg.join.num_partitions,
              "level of indirection at the master");
  std::printf("%-28s %-12zu %s\n", "tuple size",
              cfg.workload.tuple_bytes, "bytes on the wire");
  std::printf("%-28s %-12llu %s\n", "key domain",
              static_cast<unsigned long long>(cfg.workload.key_domain),
              "join attribute range [0, N)");
  std::printf("%-28s %-12zu %s\n", "slave buffer",
              cfg.balance.slave_buffer_bytes / 1024,
              "stream buffer per slave (KB)");
  return 0;
}
