// Table I: default experiment parameters. This binary prints the values the
// library actually uses so the table can be regenerated (and diffs against
// the paper are visible at a glance).
#include <cstdio>

#include "bench_common.h"
#include "common/config.h"

int main() {
  using namespace sjoin;
  SystemConfig cfg;
  bench::Reporter rep("table1_defaults", "Table I",
                      "default values used in experiments",
                      "the library's defaults match the paper's Table I",
                      cfg);
  std::printf("%-28s %-12s %s\n", "parameter", "default", "comment");
  rep.Columns({"parameter", "default", "comment"});

  auto row = [&rep](const char* name, const char* fmt, double v,
                    const char* comment) {
    rep.Text("%-28s ", name);
    rep.Num(fmt, v);
    rep.Text(" %s", comment);
    rep.EndRow();
  };
  row("W_i (i=1,2)", "%-12.0f", UsToSeconds(cfg.join.window) / 60.0,
      "window length (min)");
  row("lambda", "%-12.0f", cfg.workload.lambda,
      "avg arrival rate (tuples/sec/stream)");
  row("b", "%-12.1f", cfg.workload.b_skew,
      "skew in join attribute values (b-model)");
  row("Th_con", "%-12.2f", cfg.balance.th_con, "consumer threshold");
  row("Th_sup", "%-12.1f", cfg.balance.th_sup, "supplier threshold");
  row("theta", "%-12.1f",
      static_cast<double>(cfg.join.theta_bytes) / (1024.0 * 1024.0),
      "partition tuning parameter (MB)");
  row("block size", "%-12.0f",
      static_cast<double>(cfg.join.block_bytes / 1024), "block size (KB)");
  row("t_d", "%-12.0f", UsToSeconds(cfg.epoch.t_dist),
      "distribution epoch (sec)");
  row("t_r", "%-12.0f", UsToSeconds(cfg.epoch.t_rep),
      "reorganization epoch (sec)");
  row("partitions", "%-12.0f",
      static_cast<double>(cfg.join.num_partitions),
      "level of indirection at the master");
  row("tuple size", "%-12.0f",
      static_cast<double>(cfg.workload.tuple_bytes), "bytes on the wire");
  row("key domain", "%-12.0f",
      static_cast<double>(cfg.workload.key_domain),
      "join attribute range [0, N)");
  row("slave buffer", "%-12.0f",
      static_cast<double>(cfg.balance.slave_buffer_bytes / 1024),
      "stream buffer per slave (KB)");
  return rep.Finish();
}
