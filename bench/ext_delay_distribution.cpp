// Extension: the full production-delay distribution, not just the mean the
// paper plots. Near saturation the tail (p99) detaches from the median
// long before the mean blows up -- the usual early-warning signal.
#include "bench_common.h"

int main() {
  using namespace sjoin;
  SystemConfig base = bench::ScaledConfig();
  base.num_slaves = 4;
  bench::Reporter rep("ext_delay_distribution", "Ext delay dist",
                      "production delay percentiles vs rate (4 slaves)",
                      "p50 tracks the epoch cadence; p95/p99 detach first "
                      "as the cluster approaches saturation (cf. Fig 6's "
                      "mean-only 4-slave curve)",
                      base);

  const double rates[] = {1500, 3000, 4500, 6000, 7000, 8000};

  std::printf("%-8s %10s %10s %10s %10s\n", "rate", "mean_s", "p50_s",
              "p95_s", "p99_s");
  rep.Columns({"rate", "mean_s", "p50_s", "p95_s", "p99_s"});
  for (double rate : rates) {
    SystemConfig cfg = base;
    cfg.workload.lambda = rate;
    RunMetrics rm = bench::Run(cfg);
    rep.Num("%-8.0f", rate);
    rep.Num(" %10.2f", rm.AvgDelaySec());
    rep.Num(" %10.2f", rm.delay_hist.Quantile(0.5) / 1e6);
    rep.Num(" %10.2f", rm.delay_hist.Quantile(0.95) / 1e6);
    rep.Num(" %10.2f", rm.delay_hist.Quantile(0.99) / 1e6);
    rep.EndRow();
    std::fflush(stdout);
  }
  return rep.Finish();
}
