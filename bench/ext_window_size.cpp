// Extension metric: "the window size within a node" (section VI-A lists it
// among the measured parameters). Per-node window state grows linearly with
// the arrival rate and shrinks with the degree of declustering; with the
// skewed b-model keys, the hottest node holds noticeably more than the
// average -- the imbalance the supplier/consumer protocol works against.
#include <algorithm>

#include "bench_common.h"

int main() {
  using namespace sjoin;
  SystemConfig base = bench::ScaledConfig();
  bench::Reporter rep("ext_window_size", "Ext window",
                      "peak per-node window state (MB)",
                      "state per node ~ 2 * rate * W * 64B / nodes; "
                      "max/avg shows the skew-induced imbalance",
                      base);
  rep.Columns({"workload", "rate", "nodes", "avg_MB", "max_MB", "max_avg"});

  auto sweep = [&](const char* workload, const SystemConfig& variant) {
    for (double rate : {1500.0, 3000.0, 6000.0}) {
      for (std::uint32_t n : {2u, 4u}) {
        SystemConfig cfg = variant;
        cfg.workload.lambda = rate;
        cfg.num_slaves = n;
        RunMetrics rm = bench::Run(cfg);
        double sum = 0;
        double mx = 0;
        for (const SlaveStats& s : rm.slaves) {
          double mb = static_cast<double>(s.window_tuples_max) * 64.0 / 1e6;
          sum += mb;
          mx = std::max(mx, mb);
        }
        double avg = sum / n;
        rep.CellText(workload);  // the section comment carries it on stdout
        rep.Num("%-8.0f", rate);
        rep.Num(" %-6.0f", static_cast<double>(n));
        rep.Num(" %12.1f", avg);
        rep.Num(" %12.1f", mx);
        rep.Num(" %12.2f", mx / avg);
        rep.EndRow();
        std::fflush(stdout);
      }
    }
  };

  std::printf("# Table I workload (b=0.7, 10^7 keys): the 60-partition "
              "indirection averages the skew out\n");
  std::printf("%-8s %-6s %12s %12s %12s\n", "rate", "nodes", "avg_MB",
              "max_MB", "max/avg");
  sweep("table1", base);

  std::printf("# dense hot keys (b=0.9, 10^4 keys): a single heavy "
              "partition skews the hottest node\n");
  SystemConfig hot = base;
  hot.workload.b_skew = 0.9;
  hot.workload.key_domain = 10'000;
  sweep("dense-hot", hot);
  return rep.Finish();
}
