// Figure 7: average per-slave CPU (processing) time vs arrival rate, with
// and without fine-grained partition tuning (4 slaves).
#include "bench_common.h"

int main() {
  using namespace sjoin;
  SystemConfig base = bench::ScaledConfig();
  base.num_slaves = 4;
  bench::Reporter rep("fig07_cpu_finetune", "Fig 7",
                      "average CPU time vs arrival rate, fine-tuning on/off "
                      "(4 slaves)",
                      "without tuning CPU time climbs sharply with rate "
                      "(window partitions grow, every probe scans more); "
                      "with tuning it grows gently and stays far lower",
                      base);

  const double rates[] = {1500, 2000, 2500, 3000, 3500, 4000, 5000, 6000};

  std::printf("%-8s %14s %14s\n", "rate", "cpu_s_no_tune", "cpu_s_tune");
  rep.Columns({"rate", "cpu_s_no_tune", "cpu_s_tune"});
  for (double rate : rates) {
    double cpu[2];
    for (int tuned = 0; tuned <= 1; ++tuned) {
      SystemConfig cfg = base;
      cfg.workload.lambda = rate;
      cfg.join.fine_tuning = tuned == 1;
      RunMetrics rm = bench::Run(cfg);
      cpu[tuned] = bench::PerSlaveSec(rm, rm.TotalCpu());
    }
    rep.Num("%-8.0f", rate);
    rep.Num(" %14.1f", cpu[0]);
    rep.Num(" %14.1f", cpu[1]);
    rep.EndRow();
    std::fflush(stdout);
  }
  return rep.Finish();
}
