// Extension (section V-B): master buffer peak vs number of sub-groups.
// The paper derives M_buf = (r t_d / 2)(1 + 1/n_g) per stream under uniform
// arrivals and equal distribution; the measured peak should approach half
// the n_g=1 value as n_g grows.
#include "bench_common.h"

int main() {
  using namespace sjoin;
  SystemConfig base = bench::ScaledConfig();
  // One slave per sub-group slot at the largest n_g, so every slot serves
  // someone (empty slots would re-inflate the buffer).
  base.num_slaves = 8;
  base.workload.lambda = 4000;
  bench::Reporter rep("ext_subgroup_buffer", "Ext V-B",
                      "master buffer peak vs sub-group count",
                      "peak buffer ~ (1 + 1/n_g)/2 of the single-group "
                      "case: halves as n_g grows (plus Poisson slack)",
                      base);

  // Combined arrival rate r of both streams, tuples/sec.
  const double r = 2.0 * base.workload.lambda;
  const double td_s = UsToSeconds(base.epoch.t_dist);
  const std::size_t tuple_bytes = base.workload.tuple_bytes;

  std::printf("%-6s %14s %16s %10s\n", "n_g", "peak_bytes",
              "formula_bytes", "ratio");
  rep.Columns({"n_g", "peak_bytes", "formula_bytes", "ratio"});
  double base_peak = 0;
  for (std::uint32_t ng : {1u, 2u, 4u, 8u}) {
    SystemConfig cfg = base;
    cfg.epoch.num_subgroups = ng;
    RunMetrics rm = bench::Run(cfg);
    const double formula =
        r * td_s / 2.0 * (1.0 + 1.0 / ng) * static_cast<double>(tuple_bytes);
    if (ng == 1) base_peak = static_cast<double>(rm.master_buffer_peak_bytes);
    const double peak = static_cast<double>(rm.master_buffer_peak_bytes);
    rep.Num("%-6.0f", static_cast<double>(ng));
    rep.Num(" %14.0f", peak);
    rep.Num(" %16.0f", formula);
    rep.Num(" %10.2f", peak / base_peak);
    rep.EndRow();
    std::fflush(stdout);
  }
  return rep.Finish();
}
