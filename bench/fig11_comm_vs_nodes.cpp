// Figure 11: communication time vs degree of declustering (rate fixed at
// 1500 t/s/stream): per-node comm falls with more nodes, aggregate comm
// grows roughly linearly, and adaptive declustering keeps the aggregate low
// by not using nodes it does not need.
#include "bench_common.h"

int main() {
  using namespace sjoin;
  SystemConfig base = bench::ScaledConfig();
  bench::Header("Fig 11", "communication time vs total nodes (rate 1500)",
                "per-node comm decreases with node count; aggregate "
                "increases ~linearly; the adaptive system's aggregate stays "
                "near the 1-node cost because it sheds unneeded slaves",
                base);

  std::printf("%-6s %12s %12s %18s %15s\n", "nodes", "aggregate_s",
              "per_node_s", "adaptive_agg_s", "adaptive_nodes");
  for (std::uint32_t n = 1; n <= 5; ++n) {
    SystemConfig cfg = base;
    cfg.num_slaves = n;
    RunMetrics fixed = bench::Run(cfg);

    SystemConfig acfg = cfg;
    acfg.balance.adaptive_declustering = true;
    RunMetrics adaptive = bench::Run(acfg);

    std::printf("%-6u %12.1f %12.1f %18.1f %15.2f\n", n,
                UsToSeconds(fixed.TotalComm()),
                bench::PerSlaveSec(fixed, fixed.TotalComm()),
                UsToSeconds(adaptive.TotalComm()),
                adaptive.avg_active_slaves);
    std::fflush(stdout);
  }
  return 0;
}
