// Figure 11: communication time vs degree of declustering (rate fixed at
// 1500 t/s/stream): per-node comm falls with more nodes, aggregate comm
// grows roughly linearly, and adaptive declustering keeps the aggregate low
// by not using nodes it does not need.
#include "bench_common.h"

int main() {
  using namespace sjoin;
  SystemConfig base = bench::ScaledConfig();
  bench::Reporter rep("fig11_comm_vs_nodes", "Fig 11",
                      "communication time vs total nodes (rate 1500)",
                      "per-node comm decreases with node count; aggregate "
                      "increases ~linearly; the adaptive system's aggregate "
                      "stays near the 1-node cost because it sheds unneeded "
                      "slaves",
                      base);

  std::printf("%-6s %12s %12s %18s %15s\n", "nodes", "aggregate_s",
              "per_node_s", "adaptive_agg_s", "adaptive_nodes");
  rep.Columns({"nodes", "aggregate_s", "per_node_s", "adaptive_agg_s",
               "adaptive_nodes"});
  for (std::uint32_t n = 1; n <= 5; ++n) {
    SystemConfig cfg = base;
    cfg.num_slaves = n;
    RunMetrics fixed = bench::Run(cfg);

    SystemConfig acfg = cfg;
    acfg.balance.adaptive_declustering = true;
    RunMetrics adaptive = bench::Run(acfg);

    rep.Num("%-6.0f", static_cast<double>(n));
    rep.Num(" %12.1f", UsToSeconds(fixed.TotalComm()));
    rep.Num(" %12.1f", bench::PerSlaveSec(fixed, fixed.TotalComm()));
    rep.Num(" %18.1f", UsToSeconds(adaptive.TotalComm()));
    rep.Num(" %15.2f", adaptive.avg_active_slaves);
    rep.EndRow();
    std::fflush(stdout);
  }
  return rep.Finish();
}
