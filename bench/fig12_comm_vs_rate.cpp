// Figure 12: min / average / max per-slave communication time vs arrival
// rate (4 slaves). The serial distribution order makes later slaves wait,
// and the divergence widens as payloads grow with the rate.
#include "bench_common.h"

int main() {
  using namespace sjoin;
  SystemConfig base = bench::ScaledConfig();
  base.num_slaves = 4;
  bench::Reporter rep("fig12_comm_vs_rate", "Fig 12",
                      "comm time (min/avg/max over slaves) vs rate "
                      "(4 slaves)",
                      "all three grow with rate; the min-max divergence "
                      "widens because tuples are distributed to the slaves "
                      "serially within each epoch",
                      base);

  const double rates[] = {1500, 2000, 2500, 3000, 3500, 4000, 5000, 6000};

  std::printf("%-8s %10s %10s %10s\n", "rate", "min_s", "avg_s", "max_s");
  rep.Columns({"rate", "min_s", "avg_s", "max_s"});
  for (double rate : rates) {
    SystemConfig cfg = base;
    cfg.workload.lambda = rate;
    RunMetrics rm = bench::Run(cfg);
    rep.Num("%-8.0f", rate);
    rep.Num(" %10.1f", UsToSeconds(rm.MinComm()));
    rep.Num(" %10.1f", bench::PerSlaveSec(rm, rm.TotalComm()));
    rep.Num(" %10.1f", UsToSeconds(rm.MaxComm()));
    rep.EndRow();
    std::fflush(stdout);
  }
  return rep.Finish();
}
