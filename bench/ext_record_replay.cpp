// Extension: record/replay cost and yield (ISSUE 9) -- what black-box
// recording every transport outcome into a `.sjrec` bundle costs a live
// cluster run, and how much faster the offline replay of one node is than
// the wall-clock run that produced it.
//
// A wall-clock mini-cluster (master + 3 slaves + collector over
// InProcTransport) distributes a fixed trace at two frame rates (t_dist =
// 5ms and 2ms -- smaller epochs mean more, smaller frames for the same
// tuple count), each once bare and once with a RecordingTap wrapped around
// every endpoint, then replays one slave's bundle with core/replayer.h:
//   * record=0 rows: the bare run (baseline wall time at that frame rate);
//   * record=1 rows: the recorded run; `frames` counts the records across
//     all bundles, `bundle_mb` their on-disk size, `replay_ms` the offline
//     re-execution of rank 2's bundle, and `speedup` the recorded run's
//     wall time over the replay's. Replay skips every live wait (recv
//     blocking, epoch pacing) because the stimulus is already sequenced,
//     so it is typically much faster than real time.
//
// `wall_ms`/`replay_ms` are real elapsed time and vary with machine load:
// the JSON report is marked deterministic=false, so bench_diff checks
// structure only. The replay's byte-identity with the live run is gated by
// tests (tests/harness/record_replay_test.cpp), not here.
//
// SJOIN_BENCH=quick shrinks the trace for smoke runs.
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/config.h"
#include "common/rng.h"
#include "core/replayer.h"
#include "core/runner.h"
#include "net/inproc_transport.h"
#include "net/recording_tap.h"
#include "obs/obs.h"
#include "obs/recording.h"

namespace {

using namespace sjoin;

/// Deterministic two-stream trace with strictly increasing timestamps.
std::vector<Rec> MakeTrace(std::size_t count, Time span_us,
                           std::uint64_t key_domain) {
  Pcg32 rng(Mix64(0x5EC0DULL), 11);
  std::vector<Rec> trace;
  trace.reserve(count);
  const Time step = std::max<Time>(1, span_us / static_cast<Time>(count));
  Time ts = 0;
  for (std::size_t i = 0; i < count; ++i) {
    ts += 1 + rng.NextBounded(static_cast<std::uint32_t>(step));
    Rec rec;
    rec.ts = ts;
    rec.key = rng.NextBounded(static_cast<std::uint32_t>(key_domain));
    rec.stream = static_cast<StreamId>(i & 1);
    trace.push_back(rec);
  }
  return trace;
}

struct RunResult {
  double wall_ms = 0.0;
  std::uint64_t frames = 0;     ///< records across every rank's bundle
  double bundle_mb = 0.0;       ///< total on-disk bundle size
};

/// One full cluster run, one thread per rank; when `record_dir` is
/// non-empty every endpoint is wrapped in a RecordingTap (outermost, like
/// the chaos harness mounts it).
RunResult RunCluster(const SystemConfig& cfg, WallOptions wall,
                     const std::vector<Rec>& trace,
                     const std::string& record_dir) {
  const Rank n = cfg.num_slaves;
  InProcHub hub(n + 2);
  std::vector<std::unique_ptr<obs::NodeObs>> obs;
  for (Rank r = 0; r < n + 2; ++r) {
    obs.push_back(std::make_unique<obs::NodeObs>());
    obs[r]->trace.SetRank(r);
  }
  wall.master_obs = obs[0].get();
  wall.slave_obs.clear();
  for (Rank s = 1; s <= n; ++s) wall.slave_obs.push_back(obs[s].get());

  std::vector<std::unique_ptr<Transport>> eps;
  std::vector<std::unique_ptr<RecordingTap>> taps;
  std::vector<Transport*> nodes;
  for (Rank r = 0; r < n + 2; ++r) {
    eps.push_back(hub.Endpoint(r));
    taps.push_back(std::make_unique<RecordingTap>(*eps[r]));
    if (!record_dir.empty()) {
      RecordingTap::Info info;
      if (r == 0) info.input_trace = &trace;
      info.wall_run_for = wall.run_for;
      info.wall_recv_timeout_us = wall.recv_timeout_us;
      info.wall_recv_max_retries = wall.recv_max_retries;
      taps[r]->Open(record_dir, cfg, info);
    }
    nodes.push_back(taps[r].get());
  }

  std::vector<std::thread> threads;
  threads.reserve(n + 1);
  for (Rank s = 1; s <= n; ++s) {
    threads.emplace_back([&, s] { (void)RunSlaveNode(*nodes[s], cfg, wall); });
  }
  std::thread collector([&] {
    (void)RunCollectorNode(*nodes[n + 1], cfg, obs[n + 1].get());
  });

  const auto t0 = std::chrono::steady_clock::now();
  RunResult res;
  (void)RunMasterNode(*nodes[0], cfg, wall);
  collector.join();
  hub.Shutdown();
  for (std::thread& t : threads) t.join();
  res.wall_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - t0)
                    .count();

  if (!record_dir.empty()) {
    for (Rank r = 0; r < n + 2; ++r) taps[r]->Finish();
    for (Rank r = 0; r < n + 2; ++r) {
      const std::string path = obs::RecordingBundlePath(record_dir, r);
      std::error_code ec;
      const auto bytes = std::filesystem::file_size(path, ec);
      if (!ec) res.bundle_mb += static_cast<double>(bytes) / (1024.0 * 1024.0);
      obs::LoadRecordingResult loaded = obs::LoadRecording(path);
      if (loaded.ok) res.frames += loaded.recording.events.size();
    }
  }
  return res;
}

}  // namespace

int main() {
  const bool quick = bench::QuickMode();
  const std::size_t tuples = quick ? 3000 : 12000;
  const Time span = (quick ? 300 : 1200) * kUsPerMs;

  SystemConfig cfg;
  cfg.num_slaves = 3;
  cfg.join.num_partitions = 24;
  cfg.join.window = 40 * kUsPerMs;
  cfg.epoch.t_dist = 5 * kUsPerMs;
  cfg.epoch.t_rep = 20 * kUsPerMs;
  cfg.workload.tuple_bytes = 64;

  WallOptions wall;
  wall.run_for = 60 * kUsPerSec;  // cap; the trace ends the run
  wall.recv_timeout_us = 250 * kUsPerMs;
  wall.recv_max_retries = 3;
  const std::vector<Rec> trace = MakeTrace(tuples, span, 48);
  wall.input_trace = &trace;

  const std::string record_dir =
      (std::filesystem::temp_directory_path() / "sjoin_bench_rr").string();
  std::filesystem::remove_all(record_dir);
  std::filesystem::create_directories(record_dir);

  bench::Reporter rep("ext_record_replay", "Ext record/replay",
                      "black-box recording overhead and offline replay "
                      "speed vs the live cluster run",
                      "recording adds IO-bounded overhead per frame; replay "
                      "skips live waits and beats real time",
                      cfg);
  rep.Deterministic(false);  // wall-clock cluster: timings vary run to run
  std::printf("# trace: %zu tuples over %.3f s; 3 slaves, 24 groups\n",
              tuples, UsToSeconds(span));
  std::printf("%-9s %7s %9s %8s %10s %10s %8s\n", "t_dist_ms", "record",
              "wall_ms", "frames", "bundle_mb", "replay_ms", "speedup");
  rep.Columns({"t_dist_ms", "record", "wall_ms", "frames", "bundle_mb",
               "replay_ms", "speedup"});

  for (const Time t_dist_ms : {Time(5), Time(2)}) {
    SystemConfig run_cfg = cfg;
    run_cfg.epoch.t_dist = t_dist_ms * kUsPerMs;
    for (const bool record : {false, true}) {
      std::filesystem::remove_all(record_dir);
      std::filesystem::create_directories(record_dir);
      RunResult r = RunCluster(run_cfg, wall, trace, record ? record_dir : "");
      double replay_ms = 0.0;
      double speedup = 0.0;
      if (record) {
        obs::LoadRecordingResult loaded =
            obs::LoadRecording(obs::RecordingBundlePath(record_dir, 2));
        if (loaded.ok) {
          const auto t0 = std::chrono::steady_clock::now();
          ReplayResult rr = ReplayNode(loaded.recording, {});
          replay_ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
          if (rr.ok && replay_ms > 0.0) speedup = r.wall_ms / replay_ms;
        }
      }
      rep.Num("%-9.0f", static_cast<double>(t_dist_ms));
      rep.Num(" %7.0f", record ? 1.0 : 0.0);
      rep.Num(" %9.2f", r.wall_ms);
      rep.Num(" %8.0f", static_cast<double>(r.frames));
      rep.Num(" %10.3f", r.bundle_mb);
      rep.Num(" %10.2f", replay_ms);
      rep.Num(" %8.1f", speedup);
      rep.EndRow();
      std::fflush(stdout);
    }
  }
  std::filesystem::remove_all(record_dir);
  return rep.Finish();
}
