// Figure 6: average production delay vs stream arrival rate, 3-5 slaves.
#include "bench_common.h"

int main() {
  using namespace sjoin;
  SystemConfig base = bench::ScaledConfig();
  bench::Reporter rep("fig06_delay_large", "Fig 6",
                      "average delay vs arrival rate (3-5 slaves)",
                      "delay stays low (~2 s) until a knee that moves right "
                      "with the slave count: ~5000 for 3 slaves, ~6500 for "
                      "4, beyond 7000 for 5",
                      base);

  const double rates[] = {1000, 2000, 3000, 4000, 5000, 6000, 7000, 8000};
  const std::uint32_t slave_counts[] = {3, 4, 5};

  std::vector<std::string> cols = {"rate"};
  std::printf("%-8s", "rate");
  for (std::uint32_t n : slave_counts) {
    std::printf(" delay_s_n%u", n);
    cols.push_back("delay_s_n" + std::to_string(n));
  }
  std::printf("\n");
  rep.Columns(std::move(cols));

  for (double rate : rates) {
    rep.Num("%-8.0f", rate);
    for (std::uint32_t n : slave_counts) {
      SystemConfig cfg = base;
      cfg.num_slaves = n;
      cfg.workload.lambda = rate;
      RunMetrics rm = bench::Run(cfg);
      rep.Num(" %10.2f", rm.AvgDelaySec());
      std::fflush(stdout);
    }
    rep.EndRow();
  }
  return rep.Finish();
}
