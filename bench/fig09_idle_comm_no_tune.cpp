// Figure 9: per-slave idle time and communication overhead vs arrival rate
// WITHOUT fine-grained partition tuning (4 slaves).
#include "bench_common.h"

int main() {
  using namespace sjoin;
  SystemConfig base = bench::ScaledConfig();
  base.num_slaves = 4;
  base.join.fine_tuning = false;
  bench::Reporter rep("fig09_idle_comm_no_tune", "Fig 9",
                      "idle time & comm overhead vs rate, NO tuning "
                      "(4 slaves)",
                      "idle time falls towards zero by ~4000 t/s (CPU eaten "
                      "by ever-larger partition scans); comm overhead grows "
                      "mildly with rate",
                      base);

  const double rates[] = {1500, 2000, 2500, 3000, 3500, 4000};

  std::printf("%-8s %10s %10s\n", "rate", "idle_s", "comm_s");
  rep.Columns({"rate", "idle_s", "comm_s"});
  for (double rate : rates) {
    SystemConfig cfg = base;
    cfg.workload.lambda = rate;
    RunMetrics rm = bench::Run(cfg);
    rep.Num("%-8.0f", rate);
    rep.Num(" %10.1f", bench::PerSlaveSec(rm, rm.TotalIdle()));
    rep.Num(" %10.1f", bench::PerSlaveSec(rm, rm.TotalComm()));
    rep.EndRow();
    std::fflush(stdout);
  }
  return rep.Finish();
}
