// Google-benchmark micro-benchmarks of the substrates: generator throughput,
// extendible-hash operations, join-module tuple processing, and the message
// codecs. These bound the host-side cost of the execution-driven simulation
// (they are NOT paper figures; the fig*/ext* binaries are).
//
// Every benchmark runs several repetitions and reports the median and p95
// (obs::SampleQuantile) across them instead of a single noisy run; the
// aggregate rows are also recorded into the structured JSON report
// (deterministic=false: bench_diff checks structure, not wall timings).
#include <benchmark/benchmark.h>

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/lockfree.h"
#include "common/rng.h"
#include "common/serialize.h"
#include "gen/stream_source.h"
#include "hash/extendible.h"
#include "join/join_module.h"
#include "net/codec.h"
#include "obs/quantiles.h"

namespace sjoin {
namespace {

/// Shared repetition/aggregate policy: medians over repetitions smooth the
/// host's scheduling noise; p95 exposes the tail. Quick mode trades
/// repetitions for runtime.
void WithStats(benchmark::internal::Benchmark* b) {
  b->Repetitions(bench::QuickMode() ? 3 : 7);
  b->ComputeStatistics("p95", [](const std::vector<double>& xs) {
    return obs::SampleQuantile(xs, 0.95);
  });
  b->ReportAggregatesOnly(true);
}

void BM_BModelNext(benchmark::State& state) {
  BModelGenerator gen(0.7, 10'000'000, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.Next());
  }
}
BENCHMARK(BM_BModelNext)->Apply(WithStats);

void BM_MergedSourceNext(benchmark::State& state) {
  MergedSource src(5000.0, 0.7, 10'000'000, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(src.Next());
  }
}
BENCHMARK(BM_MergedSourceNext)->Apply(WithStats);

void BM_ExtendibleFindAndSplit(benchmark::State& state) {
  using Dir = ExtendibleDirectory<std::vector<std::uint64_t>>;
  for (auto _ : state) {
    state.PauseTiming();
    Dir dir(12);
    Pcg32 rng(7, 1);
    state.ResumeTiming();
    for (int i = 0; i < 1000; ++i) {
      std::uint64_t h = rng.NextU64();
      dir.Find(h).bucket.push_back(h);
      if (dir.Find(h).bucket.size() > 16) {
        dir.Split(h, [](std::vector<std::uint64_t>&& from,
                        std::vector<std::uint64_t>& zero,
                        std::vector<std::uint64_t>& one, std::uint32_t bit) {
          for (std::uint64_t v : from) ((v >> bit) & 1 ? one : zero).push_back(v);
        });
      }
    }
    benchmark::DoNotOptimize(dir.BucketCount());
  }
}
BENCHMARK(BM_ExtendibleFindAndSplit)->Apply(WithStats);

void BM_JoinModuleProcessTuple(benchmark::State& state) {
  SystemConfig cfg;
  cfg.join.window = 10 * kUsPerSec;
  cfg.join.num_partitions = 16;
  StatsSink sink;
  JoinModule jm(cfg, &sink);
  MergedSource src(5000.0, 0.7, 100'000, 3);
  std::vector<Rec> batch;
  Time horizon = 0;
  for (auto _ : state) {
    state.PauseTiming();
    batch.clear();
    horizon += kUsPerSec;
    src.DrainUntil(horizon, batch);
    state.ResumeTiming();
    jm.EnqueueBatch(batch);
    jm.ProcessFor(horizon, 3600 * kUsPerSec);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(jm.TuplesProcessed()));
}
BENCHMARK(BM_JoinModuleProcessTuple)
    ->Unit(benchmark::kMillisecond)
    ->Apply(WithStats);

void BM_TupleBatchEncodeDecode(benchmark::State& state) {
  TupleBatchMsg msg;
  Pcg32 rng(5, 9);
  for (int i = 0; i < 1000; ++i) {
    msg.recs.push_back(Rec{i, rng.NextU64(), static_cast<StreamId>(i % 2)});
  }
  for (auto _ : state) {
    Writer w(64 * 1024);
    Encode(w, msg, 64);
    Reader r(w.Bytes());
    TupleBatchMsg back = DecodeTupleBatch(r, 64);
    benchmark::DoNotOptimize(back.recs.size());
  }
  state.SetBytesProcessed(
      state.iterations() *
      static_cast<std::int64_t>(TupleBatchMsg::WireSize(1000, 64)));
}
BENCHMARK(BM_TupleBatchEncodeDecode)->Apply(WithStats);

/// Raw per-record codec throughput at the fig-6 wire size, with the Writer
/// reused across batches (Clear() keeps the allocation): isolates the
/// EncodeRec/DecodeRec padding fast path (PutZeros/Skip) from the batch
/// framing measured by BM_TupleBatchEncodeDecode.
void BM_RecCodecThroughput(benchmark::State& state) {
  Pcg32 rng(11, 3);
  std::vector<Rec> recs;
  for (int i = 0; i < 1000; ++i) {
    recs.push_back(Rec{i, rng.NextU64(), static_cast<StreamId>(i % 2)});
  }
  Writer w(64 * 1024);
  for (auto _ : state) {
    w.Clear();
    for (const Rec& rec : recs) EncodeRec(w, rec, 64);
    Reader r(w.Bytes());
    std::uint64_t keys = 0;
    for (int i = 0; i < 1000; ++i) keys += DecodeRec(r, 64).key;
    benchmark::DoNotOptimize(keys);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(1000 * 64));
}
BENCHMARK(BM_RecCodecThroughput)->Apply(WithStats);

// -- Mailbox handoff: MPSC queue vs mutex+condvar deque ----------------------
//
// The InProcHub hot path in both modes (net/inproc_transport.h MailboxMode),
// reduced to its essence: Arg(0) producer threads ping small messages at one
// consumer through the chosen mailbox. The lock-free rows motivate wall
// mode: per-op cost stays flat as producers are added, where the mutex
// mailbox serializes and pays a sleep/wake pair per message under
// contention.

/// Producers hold a shared depth credit (cap 1024, the MPSC node-pool size)
/// so the in-flight backlog -- and memory -- stays bounded no matter how the
/// scheduler interleaves the threads.
constexpr std::int64_t kMailboxDepthCap = 1024;

void BM_MailboxMpscHandoff(benchmark::State& state) {
  const std::uint32_t producers = static_cast<std::uint32_t>(state.range(0));
  BlockingMpscQueue<std::uint64_t> q;
  std::atomic<std::int64_t> depth{0};
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (std::uint32_t p = 0; p < producers; ++p) {
    threads.emplace_back([&, p] {
      std::uint64_t i = 0;
      SpinWait spin;
      while (!stop.load(std::memory_order_acquire)) {
        if (depth.load(std::memory_order_acquire) >= kMailboxDepthCap) {
          spin.Pause();
          continue;
        }
        spin.Reset();
        depth.fetch_add(1, std::memory_order_relaxed);
        q.Push(p * 1'000'000'000ULL + i++);
      }
    });
  }
  std::uint64_t v = 0;
  for (auto _ : state) {
    while (q.PopTimed(v, -1) != PopStatus::kOk) {
    }
    depth.fetch_sub(1, std::memory_order_release);
    benchmark::DoNotOptimize(v);
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& t : threads) t.join();
  // Drain whatever the producers left behind so the queue destructs empty.
  while (q.TryPop(v)) {
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MailboxMpscHandoff)->Arg(1)->Arg(4)->Apply(WithStats);

void BM_MailboxMutexHandoff(benchmark::State& state) {
  const std::uint32_t producers = static_cast<std::uint32_t>(state.range(0));
  std::mutex mu;
  std::condition_variable cv;
  std::deque<std::uint64_t> queue;
  std::atomic<std::int64_t> depth{0};
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (std::uint32_t p = 0; p < producers; ++p) {
    threads.emplace_back([&, p] {
      std::uint64_t i = 0;
      SpinWait spin;
      while (!stop.load(std::memory_order_acquire)) {
        if (depth.load(std::memory_order_acquire) >= kMailboxDepthCap) {
          spin.Pause();
          continue;
        }
        spin.Reset();
        depth.fetch_add(1, std::memory_order_relaxed);
        {
          std::lock_guard<std::mutex> lock(mu);
          queue.push_back(p * 1'000'000'000ULL + i++);
        }
        cv.notify_one();
      }
    });
  }
  std::uint64_t v = 0;
  for (auto _ : state) {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return !queue.empty(); });
    v = queue.front();
    queue.pop_front();
    lock.unlock();
    depth.fetch_sub(1, std::memory_order_release);
    benchmark::DoNotOptimize(v);
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& t : threads) t.join();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MailboxMutexHandoff)->Arg(1)->Arg(4)->Apply(WithStats);

/// Console output as usual, plus every finished (aggregate) run recorded as
/// one JSON row: [name, real_time, cpu_time, unit].
class JsonTeeReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonTeeReporter(bench::Reporter* rep) : rep_(rep) {}

  void ReportRuns(const std::vector<Run>& reports) override {
    for (const Run& run : reports) {
      if (run.error_occurred) continue;
      rep_->CellText(run.benchmark_name());
      rep_->CellNum(run.GetAdjustedRealTime());
      rep_->CellNum(run.GetAdjustedCPUTime());
      rep_->CellText(benchmark::GetTimeUnitString(run.time_unit));
      rep_->EndRowQuiet();
    }
    ConsoleReporter::ReportRuns(reports);
  }

 private:
  bench::Reporter* rep_;
};

}  // namespace
}  // namespace sjoin

int main(int argc, char** argv) {
  using namespace sjoin;
  SystemConfig cfg;  // header context only; micro-benches set their own
  bench::Reporter rep("micro_benchmarks", "Micro",
                      "substrate micro-benchmarks (google-benchmark)",
                      "host-side substrate costs bounding the simulation; "
                      "median/p95 over repetitions",
                      cfg);
  rep.Deterministic(false);  // wall timings: structure-only in bench_diff
  rep.Columns({"name", "real_time", "cpu_time", "unit"});

  JsonTeeReporter tee(&rep);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks(&tee);
  benchmark::Shutdown();
  return rep.Finish();
}
