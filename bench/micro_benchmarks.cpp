// Google-benchmark micro-benchmarks of the substrates: generator throughput,
// extendible-hash operations, join-module tuple processing, and the message
// codecs. These bound the host-side cost of the execution-driven simulation
// (they are NOT paper figures; the fig*/ext* binaries are).
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "common/serialize.h"
#include "gen/stream_source.h"
#include "hash/extendible.h"
#include "join/join_module.h"
#include "net/codec.h"

namespace sjoin {
namespace {

void BM_BModelNext(benchmark::State& state) {
  BModelGenerator gen(0.7, 10'000'000, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.Next());
  }
}
BENCHMARK(BM_BModelNext);

void BM_MergedSourceNext(benchmark::State& state) {
  MergedSource src(5000.0, 0.7, 10'000'000, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(src.Next());
  }
}
BENCHMARK(BM_MergedSourceNext);

void BM_ExtendibleFindAndSplit(benchmark::State& state) {
  using Dir = ExtendibleDirectory<std::vector<std::uint64_t>>;
  for (auto _ : state) {
    state.PauseTiming();
    Dir dir(12);
    Pcg32 rng(7, 1);
    state.ResumeTiming();
    for (int i = 0; i < 1000; ++i) {
      std::uint64_t h = rng.NextU64();
      dir.Find(h).bucket.push_back(h);
      if (dir.Find(h).bucket.size() > 16) {
        dir.Split(h, [](std::vector<std::uint64_t>&& from,
                        std::vector<std::uint64_t>& zero,
                        std::vector<std::uint64_t>& one, std::uint32_t bit) {
          for (std::uint64_t v : from) ((v >> bit) & 1 ? one : zero).push_back(v);
        });
      }
    }
    benchmark::DoNotOptimize(dir.BucketCount());
  }
}
BENCHMARK(BM_ExtendibleFindAndSplit);

void BM_JoinModuleProcessTuple(benchmark::State& state) {
  SystemConfig cfg;
  cfg.join.window = 10 * kUsPerSec;
  cfg.join.num_partitions = 16;
  StatsSink sink;
  JoinModule jm(cfg, &sink);
  MergedSource src(5000.0, 0.7, 100'000, 3);
  std::vector<Rec> batch;
  Time horizon = 0;
  for (auto _ : state) {
    state.PauseTiming();
    batch.clear();
    horizon += kUsPerSec;
    src.DrainUntil(horizon, batch);
    state.ResumeTiming();
    jm.EnqueueBatch(batch);
    jm.ProcessFor(horizon, 3600 * kUsPerSec);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(jm.TuplesProcessed()));
}
BENCHMARK(BM_JoinModuleProcessTuple)->Unit(benchmark::kMillisecond);

void BM_TupleBatchEncodeDecode(benchmark::State& state) {
  TupleBatchMsg msg;
  Pcg32 rng(5, 9);
  for (int i = 0; i < 1000; ++i) {
    msg.recs.push_back(Rec{i, rng.NextU64(), static_cast<StreamId>(i % 2)});
  }
  for (auto _ : state) {
    Writer w(64 * 1024);
    Encode(w, msg, 64);
    Reader r(w.Bytes());
    TupleBatchMsg back = DecodeTupleBatch(r, 64);
    benchmark::DoNotOptimize(back.recs.size());
  }
  state.SetBytesProcessed(
      state.iterations() *
      static_cast<std::int64_t>(TupleBatchMsg::WireSize(1000, 64)));
}
BENCHMARK(BM_TupleBatchEncodeDecode);

}  // namespace
}  // namespace sjoin

BENCHMARK_MAIN();
