// Figure 8: average production delay vs arrival rate WITHOUT fine-grained
// partition tuning (4 slaves). Compare with Fig 6's 4-slave curve: the paper
// reports ~48 s at 4000 t/s untuned vs ~2 s tuned.
#include "bench_common.h"

int main() {
  using namespace sjoin;
  SystemConfig base = bench::ScaledConfig();
  base.num_slaves = 4;
  base.join.fine_tuning = false;
  bench::Reporter rep("fig08_delay_no_finetune", "Fig 8",
                      "average delay vs arrival rate, NO fine tuning "
                      "(4 slaves)",
                      "delay blows up near 4000 t/s (~48 s in the paper) "
                      "where the tuned system (Fig 6) still sits near 2 s",
                      base);

  const double rates[] = {1500, 2000, 2500, 3000, 3500, 4000};

  std::printf("%-8s %10s\n", "rate", "delay_s");
  rep.Columns({"rate", "delay_s"});
  for (double rate : rates) {
    SystemConfig cfg = base;
    cfg.workload.lambda = rate;
    RunMetrics rm = bench::Run(cfg);
    rep.Num("%-8.0f", rate);
    rep.Num(" %10.2f", rm.AvgDelaySec());
    rep.EndRow();
    std::fflush(stdout);
  }
  return rep.Finish();
}
