// Figure 5: average production delay vs stream arrival rate, 1-2 slaves.
#include "bench_common.h"

int main() {
  using namespace sjoin;
  SystemConfig base = bench::ScaledConfig();
  bench::Reporter rep("fig05_delay_small", "Fig 5",
                      "average delay vs arrival rate (1-2 slaves)",
                      "flat (few seconds) until the saturation knee; knee "
                      "near 1500-2000 t/s for 1 slave and ~2x that for 2 "
                      "slaves",
                      base);

  const double rates[] = {1000, 1250, 1500, 1750, 2000,
                          2500, 3000, 3500};
  const std::uint32_t slave_counts[] = {1, 2};

  std::vector<std::string> cols = {"rate"};
  std::printf("%-8s", "rate");
  for (std::uint32_t n : slave_counts) {
    std::printf(" delay_s_n%u", n);
    cols.push_back("delay_s_n" + std::to_string(n));
  }
  std::printf("\n");
  rep.Columns(std::move(cols));

  for (double rate : rates) {
    rep.Num("%-8.0f", rate);
    for (std::uint32_t n : slave_counts) {
      SystemConfig cfg = base;
      cfg.num_slaves = n;
      cfg.workload.lambda = rate;
      RunMetrics rm = bench::Run(cfg);
      rep.Num(" %10.2f", rm.AvgDelaySec());
      std::fflush(stdout);
    }
    rep.EndRow();
  }
  return rep.Finish();
}
