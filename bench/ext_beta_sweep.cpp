// Ablation: the declustering granularity parameter beta (section V-A).
// The system grows when N_sup > beta * N_con: small beta reacts eagerly
// (more nodes, lower delay, higher aggregate comm); large beta tolerates
// more overload before growing.
#include "bench_common.h"

int main() {
  using namespace sjoin;
  SystemConfig base = bench::ScaledConfig();
  // beta only matters when suppliers and consumers coexist (with no
  // consumer the system grows at any beta). A dense, heavily skewed key
  // domain puts ~39% of all tuples behind one indivisible partition, so
  // whichever slave holds it stays a supplier while the rest idle --
  // exactly the N_sup=1 vs N_con>=1 regime the growth rule arbitrates.
  base.num_slaves = 8;
  base.initial_active_slaves = 4;
  base.workload.lambda = 5000;
  base.workload.key_domain = 500;
  base.workload.b_skew = 0.9;
  base.balance.adaptive_declustering = true;
  bench::Reporter rep("ext_beta_sweep", "Ablation",
                      "beta sweep (adaptive, start 4 of 8 slaves, rate "
                      "5000, one hot partition)",
                      "smaller beta grows the cluster sooner: more active "
                      "slaves, lower delay, more aggregate communication",
                      base);

  std::printf("%-6s %12s %10s %12s %12s\n", "beta", "avg_active",
              "delay_s", "comm_agg_s", "migrations");
  rep.Columns({"beta", "avg_active", "delay_s", "comm_agg_s", "migrations"});
  for (double beta : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    SystemConfig cfg = base;
    cfg.balance.beta = beta;
    RunMetrics rm = bench::Run(cfg);
    rep.Num("%-6.1f", beta);
    rep.Num(" %12.2f", rm.avg_active_slaves);
    rep.Num(" %10.2f", rm.AvgDelaySec());
    rep.Num(" %12.1f", UsToSeconds(rm.TotalComm()));
    rep.Num(" %12.0f", static_cast<double>(rm.migrations));
    rep.EndRow();
    std::fflush(stdout);
  }
  return rep.Finish();
}
