// Figure 10: per-slave idle time and communication overhead vs arrival rate
// WITH fine-grained partition tuning (4 slaves).
#include "bench_common.h"

int main() {
  using namespace sjoin;
  SystemConfig base = bench::ScaledConfig();
  base.num_slaves = 4;
  bench::Reporter rep("fig10_idle_comm_tune", "Fig 10",
                      "idle time & comm overhead vs rate, WITH tuning "
                      "(4 slaves)",
                      "idle time stays high far past the untuned system's "
                      "4000 t/s exhaustion point (Fig 9), approaching zero "
                      "only near the tuned capacity; comm overhead is "
                      "essentially unchanged by tuning -- the tuning is "
                      "local and free of network cost",
                      base);

  const double rates[] = {1500, 2000, 2500, 3000, 3500, 4000, 5000, 6000};

  std::printf("%-8s %10s %10s\n", "rate", "idle_s", "comm_s");
  rep.Columns({"rate", "idle_s", "comm_s"});
  for (double rate : rates) {
    SystemConfig cfg = base;
    cfg.workload.lambda = rate;
    RunMetrics rm = bench::Run(cfg);
    rep.Num("%-8.0f", rate);
    rep.Num(" %10.1f", bench::PerSlaveSec(rm, rm.TotalIdle()));
    rep.Num(" %10.1f", bench::PerSlaveSec(rm, rm.TotalComm()));
    rep.EndRow();
    std::fflush(stdout);
  }
  return rep.Finish();
}
