// Related-work comparison: Aligned Tuple Routing and Coordinated Tuple
// Routing (Gu et al., ICDE'07) vs this paper's partitioned load diffusion,
// on identical workloads (4 nodes). ATR circulates the whole join to one
// segment owner at a time, so its capacity stays near a single node's and
// segment handovers ship the entire window state. CTR balances storage but
// cascades every tuple to every node of the opposite routing hop, so its
// network traffic scales with the node count.
#include "baseline/atr.h"
#include "baseline/ctr.h"
#include "bench_common.h"

int main() {
  using namespace sjoin;
  SystemConfig base = bench::ScaledConfig();
  base.num_slaves = 4;
  bench::Reporter rep("ext_atr_baseline", "Ext ATR/CTR",
                      "delay & comm vs rate: this system vs ATR vs CTR "
                      "(4 nodes)",
                      "the partitioned system's knee sits ~4x one node's "
                      "capacity; ATR saturates near single-node capacity "
                      "and ships the whole window at every segment "
                      "boundary; CTR balances CPU but pays ~Nx the "
                      "communication",
                      base);

  AtrOptions aopts;
  aopts.segment = base.join.window;  // handovers land inside the measurement
  aopts.warmup = bench::Opts().warmup;
  aopts.measure = bench::Opts().measure;
  CtrOptions copts;
  copts.warmup = aopts.warmup;
  copts.measure = aopts.measure;

  const double rates[] = {1000, 1500, 2000, 3000, 4000, 5000, 6000};

  std::printf("%-8s %12s %12s %12s %12s %12s %12s\n", "rate",
              "ours_delay_s", "atr_delay_s", "ctr_delay_s", "ours_comm_s",
              "atr_comm_s", "ctr_comm_s");
  rep.Columns({"rate", "ours_delay_s", "atr_delay_s", "ctr_delay_s",
               "ours_comm_s", "atr_comm_s", "ctr_comm_s"});
  for (double rate : rates) {
    SystemConfig cfg = base;
    cfg.workload.lambda = rate;
    RunMetrics ours = bench::Run(cfg);
    RunMetrics atr = RunAtr(cfg, aopts);
    RunMetrics ctr = RunCtr(cfg, copts);
    rep.Num("%-8.0f", rate);
    rep.Num(" %12.2f", ours.AvgDelaySec());
    rep.Num(" %12.2f", atr.AvgDelaySec());
    rep.Num(" %12.2f", ctr.AvgDelaySec());
    rep.Num(" %12.1f", UsToSeconds(ours.TotalComm()));
    rep.Num(" %12.1f", UsToSeconds(atr.TotalComm()));
    rep.Num(" %12.1f", UsToSeconds(ctr.TotalComm()));
    rep.EndRow();
    std::fflush(stdout);
  }
  return rep.Finish();
}
