// Extension: the replication trade-off of ISSUE 2 -- checkpoint interval vs
// replication overhead and recovery cost.
//
// A wall-clock mini-cluster (master + 3 slaves + collector over
// InProcTransport + FaultTransport) distributes a fixed trace; one slave
// crashes mid-run and its partition-groups fail over to their buddies with
// the retained batches replayed. Sweeping the checkpoint interval exposes
// the paper-style trade-off:
//   * small intervals  -> more checkpoint traffic (ckpt_bytes), but a short
//     retention buffer and a small replay at recovery;
//   * large intervals  -> cheap steady state, but the master retains more
//     epochs and recovery replays more tuples.
// `recovery_ms` is the master-observed failover span (dead-slave verdict
// through the last retained batch redelivered); `replayed_tuples` is the
// recovery work the adopting buddies must redo.
//
// Every run is differentially safe by construction (the chaos suite asserts
// exactness under this exact scenario); this bench only measures cost.
//
//   column 1: checkpoint interval in distribution epochs ("off" = baseline)
//   gnuplot: plot "..." using 1:4 (overhead %), 1:7 (replayed tuples)
//
// Wall-clock timings make this bench non-deterministic: its JSON report is
// marked deterministic=false, so bench_diff checks structure only.
//
// SJOIN_BENCH=quick shrinks the trace for smoke runs.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/config.h"
#include "common/rng.h"
#include "core/runner.h"
#include "net/fault_transport.h"
#include "net/inproc_transport.h"

namespace {

using namespace sjoin;

/// Deterministic two-stream trace with strictly increasing timestamps.
std::vector<Rec> MakeTrace(std::size_t count, Time span_us,
                           std::uint64_t key_domain) {
  Pcg32 rng(Mix64(0xBEEFULL), 7);
  std::vector<Rec> trace;
  trace.reserve(count);
  const Time step = std::max<Time>(1, span_us / static_cast<Time>(count));
  Time ts = 0;
  for (std::size_t i = 0; i < count; ++i) {
    ts += 1 + rng.NextBounded(static_cast<std::uint32_t>(step));
    Rec rec;
    rec.ts = ts;
    rec.key = rng.NextBounded(static_cast<std::uint32_t>(key_domain));
    rec.stream = static_cast<StreamId>(i & 1);
    trace.push_back(rec);
  }
  return trace;
}

struct RunResult {
  MasterSummary master;
  std::vector<SlaveSummary> slaves;
};

/// One full cluster run over in-process channels: every rank is a thread,
/// every endpoint is decorated with the (possibly crash-injecting) fault
/// transport.
RunResult RunCluster(const SystemConfig& cfg, const WallOptions& wall,
                     const FaultConfig& faults) {
  const Rank n = cfg.num_slaves;
  InProcHub hub(n + 2);
  std::vector<std::unique_ptr<FaultEndpoint>> eps(n + 2);
  for (Rank r = 0; r < n + 2; ++r) {
    eps[r] = std::make_unique<FaultEndpoint>(hub.Endpoint(r), faults);
  }

  RunResult result;
  result.slaves.resize(n);
  std::vector<std::thread> threads;
  threads.reserve(n + 1);
  for (Rank s = 1; s <= n; ++s) {
    threads.emplace_back([&, s] {
      result.slaves[s - 1] = RunSlaveNode(*eps[s], cfg, wall);
    });
  }
  std::thread collector([&] { (void)RunCollectorNode(*eps[n + 1], cfg); });

  result.master = RunMasterNode(*eps[0], cfg, wall);
  collector.join();
  hub.Shutdown();
  for (std::thread& t : threads) t.join();
  return result;
}

}  // namespace

int main() {
  const bool quick = bench::QuickMode();
  const std::size_t tuples = quick ? 2400 : 8000;
  const Time span = (quick ? 300 : 900) * kUsPerMs;

  SystemConfig cfg;
  cfg.num_slaves = 3;
  cfg.join.num_partitions = 24;
  cfg.join.window = 40 * kUsPerMs;
  cfg.epoch.t_dist = 5 * kUsPerMs;
  cfg.epoch.t_rep = 1000 * kUsPerSec;  // no reorganizations: isolate repl cost
  cfg.workload.tuple_bytes = 64;

  WallOptions wall;
  wall.run_for = 60 * kUsPerSec;  // cap; the trace ends the run
  wall.recv_timeout_us = 30 * kUsPerMs;
  wall.recv_max_retries = 2;
  // The master's wall-stage profile (codec/net) lands in the JSON report.
  wall.master_obs = &bench::SharedObs();
  const std::vector<Rec> trace = MakeTrace(tuples, span, 60);
  wall.input_trace = &trace;

  FaultConfig crash;
  crash.crash_rank = 1;
  // Crash mid-run: roughly half the trace distributed, retention live.
  crash.crash_after_batches =
      static_cast<std::uint64_t>(span / cfg.epoch.t_dist) / 2;

  bench::Reporter rep("ext_recovery_overhead", "Ext recovery",
                      "replication overhead and recovery cost vs checkpoint "
                      "interval",
                      "ckpt_bytes falls and replayed_tuples grows as the "
                      "interval widens",
                      cfg);
  rep.Deterministic(false);  // wall-clock cluster: timings vary run to run
  std::printf("# trace: %zu tuples over %.3f s, slave 1 crashes at epoch "
              "%llu\n",
              tuples, UsToSeconds(span),
              static_cast<unsigned long long>(crash.crash_after_batches));
  std::printf("%-10s %12s %12s %12s %10s %12s %14s %12s\n", "ckpt_every",
              "tuple_bytes", "ckpt_bytes", "overhead_pct", "ckpt_acks",
              "replay_batch", "replay_tuples", "recovery_ms");
  rep.Columns({"ckpt_every", "tuple_bytes", "ckpt_bytes", "overhead_pct",
               "ckpt_acks", "replay_batch", "replay_tuples", "recovery_ms"});

  // Baseline: replication off, same crash -- no overhead, no recovery (the
  // dead groups' matches are simply lost).
  {
    SystemConfig base = cfg;
    base.replication.enabled = false;
    RunResult r = RunCluster(base, wall, crash);
    rep.Text("%-10s", "off");
    rep.Num(" %12.0f", static_cast<double>(r.master.tuples_sent * 64));
    rep.Num(" %12.0f", 0.0);
    rep.Num(" %12.2f", 0.0);
    rep.Num(" %10.0f", 0.0);
    rep.Num(" %12.0f", 0.0);
    rep.Num(" %14.0f", 0.0);
    rep.Num(" %12.2f", 0.0);
    rep.EndRow();
  }

  for (std::uint32_t every : {1u, 2u, 4u, 8u, 16u}) {
    SystemConfig run_cfg = cfg;
    run_cfg.replication.enabled = true;
    run_cfg.replication.ckpt_interval_epochs = every;
    RunResult r = RunCluster(run_cfg, wall, crash);
    const double tuple_bytes =
        static_cast<double>(r.master.tuples_sent) * 64.0;
    const double overhead =
        tuple_bytes > 0.0
            ? 100.0 * static_cast<double>(r.master.ckpt_bytes) / tuple_bytes
            : 0.0;
    rep.Num("%-10.0f", static_cast<double>(every));
    rep.Num(" %12.0f", tuple_bytes);
    rep.Num(" %12.0f", static_cast<double>(r.master.ckpt_bytes));
    rep.Num(" %12.2f", overhead);
    rep.Num(" %10.0f", static_cast<double>(r.master.ckpt_acks));
    rep.Num(" %12.0f", static_cast<double>(r.master.replayed_batches));
    rep.Num(" %14.0f", static_cast<double>(r.master.replayed_tuples));
    rep.Num(" %12.2f", static_cast<double>(r.master.recovery_us) / 1000.0);
    rep.EndRow();
    std::fflush(stdout);
  }
  return rep.Finish();
}
